package evolve

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"cods/internal/colstore"
	"cods/internal/wah"
)

// DecomposeSpec describes DECOMPOSE TABLE: split the input into two output
// tables whose attribute sets union to the input's attributes and overlap
// in the common attributes (paper Table 1, §2.4).
type DecomposeSpec struct {
	OutS     string   // name of the first output table
	SColumns []string // attributes of the first output (includes the common attributes)
	OutT     string   // name of the second output table
	TColumns []string // attributes of the second output (includes the common attributes)
}

// DecomposeResult carries both outputs plus which side was reused
// unchanged (Property 1).
type DecomposeResult struct {
	S, T *colstore.Table
	// Reused names the output table that shares the input's columns with
	// zero data movement.
	Reused string
	// Deduplicated names the output table built by distinction +
	// filtering.
	Deduplicated string
}

// Decompose performs a lossless-join decomposition of r according to spec.
//
// The common attributes must be a candidate key of one output; that output
// is the deduplicated side and the other output is reused unchanged.
// Orientation is detected automatically: the side whose remaining
// attributes are functionally determined by the common attributes becomes
// the deduplicated side (preferring T when both qualify, matching the
// paper's presentation where S is unchanged).
func Decompose(r *colstore.Table, spec DecomposeSpec, opt Options) (*DecomposeResult, error) {
	if err := validateDecomposeSpec(r, spec); err != nil {
		return nil, err
	}
	common := intersect(spec.SColumns, spec.TColumns)
	if len(common) == 0 {
		return nil, fmt.Errorf("evolve: decomposition of %q has no common attributes; the join would be a cross product", r.Name())
	}

	// Orientation: which output is keyed by the common attributes?
	fdCheck := func(det, dep []string) bool {
		if opt.Rebuild {
			return fdHolds(r, det, dep)
		}
		return fdHoldsSegmented(r, det, dep, opt)
	}
	dedupT := true
	if opt.ValidateFD {
		okT := fdCheck(common, minus(spec.TColumns, common))
		okS := fdCheck(common, minus(spec.SColumns, common))
		switch {
		case okT:
			dedupT = true
		case okS:
			dedupT = false
		default:
			return nil, fmt.Errorf("evolve: decomposition of %q is lossy: common attributes %v are not a key of either output", r.Name(), common)
		}
	}

	sCols, sName, tCols, tName := spec.SColumns, spec.OutS, spec.TColumns, spec.OutT
	if !dedupT {
		sCols, tCols = tCols, sCols
		sName, tName = tName, sName
	}

	// Property 1: the unchanged output reuses the input's columns.
	opt.trace(fmt.Sprintf("reuse: creating %s from existing columns of %s (no data movement)", sName, r.Name()))
	s, err := r.Project(sName, sCols, r.Key())
	if err != nil {
		return nil, err
	}

	// Steps 1+2 — distinction then bitmap filtering (paper §2.4).
	// Segment-wise by default: each segment finds local representatives
	// and filters independently; the merge phase only deduplicates
	// representative values across segment boundaries. The monolithic
	// oracle runs both steps over the stitched whole-table view.
	var t *colstore.Table
	if opt.Rebuild {
		opt.trace(fmt.Sprintf("distinction: locating one representative row per distinct %v", common))
		positions, keyIDsByRank, derr := distinction(r, common, opt)
		if derr != nil {
			return nil, derr
		}
		opt.trace(fmt.Sprintf("bitmap filtering: building %s's columns from compressed bitmaps", tName))
		t, err = filterColumns(r, tName, tCols, positions, keyIDsByRank, common, opt)
	} else {
		t, err = decomposeDedup(r, tName, tCols, common, opt)
	}
	if err != nil {
		return nil, err
	}

	res := &DecomposeResult{Reused: sName, Deduplicated: tName}
	if dedupT {
		res.S, res.T = s, t
	} else {
		res.S, res.T = t, s
	}
	return res, nil
}

func validateDecomposeSpec(r *colstore.Table, spec DecomposeSpec) error {
	if spec.OutS == "" || spec.OutT == "" {
		return fmt.Errorf("evolve: decomposition outputs must be named")
	}
	if spec.OutS == spec.OutT {
		return fmt.Errorf("evolve: decomposition outputs must have distinct names")
	}
	covered := make(map[string]bool)
	for _, set := range [][]string{spec.SColumns, spec.TColumns} {
		seen := make(map[string]bool)
		for _, c := range set {
			if !r.HasColumn(c) {
				return fmt.Errorf("evolve: table %q has no column %q", r.Name(), c)
			}
			if seen[c] {
				return fmt.Errorf("evolve: column %q listed twice in one output", c)
			}
			seen[c] = true
			covered[c] = true
		}
		if len(set) == 0 {
			return fmt.Errorf("evolve: decomposition output with no columns")
		}
	}
	for _, c := range r.ColumnNames() {
		if !covered[c] {
			return fmt.Errorf("evolve: the union of output attributes must equal %q's attributes; %q missing", r.Name(), c)
		}
	}
	return nil
}

// distinction returns the sorted position list over r's rows with one
// entry per distinct value combination of the given columns. For a
// single-attribute key it also returns the key's value id at each
// position, which lets the output key column be assembled directly (one
// bit per value, no filtering, shared dictionary).
func distinction(r *colstore.Table, columns []string, opt Options) (positions []uint64, keyIDsByRank []uint32, err error) {
	if len(columns) == 1 {
		// Fast path: the first position of each value's bitmap, found by
		// skipping leading zero fills on the compressed form — one
		// independent task per distinct value.
		col, err := r.Column(columns[0])
		if err != nil {
			return nil, nil, err
		}
		bc := col.ToBitmapEncoding()
		n := bc.DistinctCount()
		type rep struct {
			pos uint64
			id  uint32
		}
		reps := make([]rep, n)
		if err := opt.forEachErr(n, func(id int) error {
			p, ok := bc.BitmapForID(uint32(id)).FirstOne()
			if !ok {
				return fmt.Errorf("evolve: column %q value id %d has an empty bitmap", columns[0], id)
			}
			reps[id] = rep{pos: p, id: uint32(id)}
			return nil
		}); err != nil {
			return nil, nil, err
		}
		sort.Slice(reps, func(a, b int) bool { return reps[a].pos < reps[b].pos })
		positions = make([]uint64, n)
		keyIDsByRank = make([]uint32, n)
		for i, rp := range reps {
			positions[i] = rp.pos
			keyIDsByRank[i] = rp.id
		}
		return positions, keyIDsByRank, nil
	}
	// Composite key: one scan over the key columns' row-wise ids.
	ids := make([][]uint32, len(columns))
	for i, cn := range columns {
		col, err := r.Column(cn)
		if err != nil {
			return nil, nil, err
		}
		ids[i] = col.RowIDs()
	}
	seen := make(map[string]bool, 1024)
	var kb strings.Builder
	for row := uint64(0); row < r.NumRows(); row++ {
		kb.Reset()
		for i := range ids {
			fmt.Fprintf(&kb, "%d\x00", ids[i][row])
		}
		k := kb.String()
		if !seen[k] {
			seen[k] = true
			positions = append(positions, row)
		}
	}
	return positions, nil, nil
}

// filterColumns builds the deduplicated output table by filtering each of
// its attributes' bitmaps with the distinction position list.
func filterColumns(r *colstore.Table, name string, columns []string, positions []uint64, keyIDsByRank []uint32, key []string, opt Options) (*colstore.Table, error) {
	nrows := uint64(len(positions))
	outCols := make([]*colstore.Column, len(columns))
	for ci, cn := range columns {
		col, err := r.Column(cn)
		if err != nil {
			return nil, err
		}
		bc := col.ToBitmapEncoding()
		if keyIDsByRank != nil && len(key) == 1 && cn == key[0] {
			// Key column fast path: every value survives with exactly one
			// row, whose output position is its representative's rank.
			// Build each single-bit vector directly and share the
			// dictionary — no filtering, no re-interning.
			bitmaps := make([]*wah.Bitmap, bc.DistinctCount())
			for rank, id := range keyIDsByRank {
				bm := wah.New()
				bm.Add(uint64(rank))
				bitmaps[id] = bm
			}
			nc, err := colstore.NewColumnSharingDict(col.Name(), bc.Dict(), bitmaps, nrows)
			if err != nil {
				return nil, err
			}
			outCols[ci] = nc
			continue
		}
		n := bc.DistinctCount()
		values := make([]string, n)
		bitmaps := make([]*wah.Bitmap, n)
		opt.forEach(n, func(id int) {
			values[id] = bc.Dict().Value(uint32(id))
			bitmaps[id] = wah.FilterPositions(bc.BitmapForID(uint32(id)), positions)
		})
		nc, err := colstore.NewColumnFromBitmaps(col.Name(), values, bitmaps, nrows)
		if err != nil {
			return nil, err
		}
		outCols[ci] = nc
	}
	return colstore.NewTable(name, outCols, key)
}

// decomposeDedup builds the deduplicated output segment-wise. Map phase:
// every segment locates its local representative rows — the first local
// position of each locally distinct value of the common attributes — in
// parallel. Merge phase: representatives whose value already occurred in
// an earlier segment are dropped, so only the globally first occurrence
// survives; segments are visited in order and local positions are
// ascending, which keeps survivors in global row order — the exact row
// sequence the monolithic distinction produces. Filter phase: each
// contributing segment shrinks its bitmaps by its surviving local
// positions and becomes one output segment; segments that introduce no
// new value are skipped outright, which is what makes decomposition cost
// proportional to the segments holding new values instead of the row
// count.
func decomposeDedup(r *colstore.Table, name string, columns, common []string, opt Options) (*colstore.Table, error) {
	segs := r.Segments()
	single := len(common) == 1
	type segReps struct {
		positions []uint64 // ascending local row positions
		keys      []string // representative's value (or composite value key), aligned
	}
	reps := make([]segReps, len(segs))
	opt.trace(fmt.Sprintf("distinction map: scanning %d segments independently for representatives of %v", len(segs), common))
	if err := opt.forEachErr(len(segs), func(i int) error {
		s := segs[i]
		if single {
			col, err := s.Column(common[0])
			if err != nil {
				return err
			}
			bc := col.ToBitmapEncoding()
			n := bc.DistinctCount()
			type rep struct {
				pos uint64
				v   string
			}
			local := make([]rep, n)
			for id := 0; id < n; id++ {
				p, ok := bc.BitmapForID(uint32(id)).FirstOne()
				if !ok {
					return fmt.Errorf("evolve: column %q value id %d has an empty bitmap", common[0], id)
				}
				local[id] = rep{pos: p, v: bc.Dict().Value(uint32(id))}
			}
			sort.Slice(local, func(a, b int) bool { return local[a].pos < local[b].pos })
			sr := segReps{positions: make([]uint64, n), keys: make([]string, n)}
			for j, rp := range local {
				sr.positions[j] = rp.pos
				sr.keys[j] = rp.v
			}
			reps[i] = sr
			return nil
		}
		// Composite common attributes: one scan over the segment's rows,
		// keyed by values rather than local ids so representatives are
		// comparable across segments.
		ids := make([][]uint32, len(common))
		dicts := make([]func(uint32) string, len(common))
		for j, cn := range common {
			c, err := s.Column(cn)
			if err != nil {
				return err
			}
			ids[j] = c.RowIDs()
			dicts[j] = c.Dict().Value
		}
		seen := make(map[string]bool, 64)
		var sr segReps
		var kb strings.Builder
		for row := uint64(0); row < s.NumRows(); row++ {
			kb.Reset()
			for j := range ids {
				kb.WriteString(dicts[j](ids[j][row]))
				kb.WriteByte(0)
			}
			k := kb.String()
			if !seen[k] {
				seen[k] = true
				sr.positions = append(sr.positions, row)
				sr.keys = append(sr.keys, k)
			}
		}
		reps[i] = sr
		return nil
	}); err != nil {
		return nil, err
	}

	// Merge: globally first occurrence wins.
	seen := make(map[string]bool, 1024)
	survivors := make([][]uint64, len(segs))
	keep := make([][]string, len(segs)) // surviving values, single-attribute fast path only
	contributing := 0
	for i := range segs {
		for j, k := range reps[i].keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			survivors[i] = append(survivors[i], reps[i].positions[j])
			if single {
				keep[i] = append(keep[i], k)
			}
		}
		if len(survivors[i]) > 0 {
			contributing++
		}
	}
	opt.trace(fmt.Sprintf("distinction merge: %d distinct %v; %d of %d segments contribute representatives", len(seen), common, contributing, len(segs)))

	opt.trace(fmt.Sprintf("bitmap filtering: building %s's segments from surviving local positions", name))
	outSegs := make([]*colstore.Segment, len(segs))
	if err := opt.forEachErr(len(segs), func(i int) error {
		if len(survivors[i]) == 0 {
			return nil
		}
		seg, err := dedupSegment(segs[i], columns, common, survivors[i], keep[i], opt)
		outSegs[i] = seg
		return err
	}); err != nil {
		return nil, err
	}
	var packed []*colstore.Segment
	for _, s := range outSegs {
		if s != nil {
			packed = append(packed, s)
		}
	}
	return colstore.NewSegmented(name, columns, packed, common)
}

// dedupSegment filters one contributing segment down to its surviving
// representative rows, producing one output segment.
func dedupSegment(s *colstore.Segment, columns, common []string, positions []uint64, keyVals []string, opt Options) (*colstore.Segment, error) {
	nrows := uint64(len(positions))
	sb := colstore.NewSegmentBuilder(columns)
	for ci, cn := range columns {
		col, err := s.Column(cn)
		if err != nil {
			return nil, err
		}
		bc := col.ToBitmapEncoding()
		n := bc.DistinctCount()
		values := make([]string, n)
		bitmaps := make([]*wah.Bitmap, n)
		if keyVals != nil && len(common) == 1 && cn == common[0] {
			// Key-column fast path: each surviving value appears exactly
			// once, at its representative's rank — single-bit vectors, no
			// filtering. Values stay in local dictionary order (survivors
			// get a bitmap, the rest are dropped by the builder).
			for id := 0; id < n; id++ {
				values[id] = bc.Dict().Value(uint32(id))
			}
			for rank, v := range keyVals {
				bm := wah.New()
				bm.Add(uint64(rank))
				bitmaps[bc.Dict().Lookup(v)] = bm
			}
		} else {
			opt.forEach(n, func(id int) {
				values[id] = bc.Dict().Value(uint32(id))
				bitmaps[id] = wah.FilterPositions(bc.BitmapForID(uint32(id)), positions)
			})
		}
		if err := sb.SetFromBitmaps(ci, values, bitmaps, nrows); err != nil {
			return nil, err
		}
	}
	return sb.Finish()
}

// fdHoldsSegmented is fdHolds computed segment-wise: each segment builds
// its det-values → dep-values map locally and in parallel (value-based —
// local dictionary ids are not comparable across segments), then the
// merge phase checks for conflicts across segment boundaries.
func fdHoldsSegmented(t *colstore.Table, det, dep []string, opt Options) bool {
	if len(dep) == 0 {
		return true
	}
	segs := t.Segments()
	maps := make([]map[string]string, len(segs))
	if err := opt.forEachErr(len(segs), func(i int) error {
		m, err := segFDMap(segs[i], det, dep)
		maps[i] = m
		return err
	}); err != nil {
		return false
	}
	merged := maps[0]
	for _, m := range maps[1:] {
		for k, v := range m {
			if prev, ok := merged[k]; ok {
				if prev != v {
					return false
				}
			} else {
				merged[k] = v
			}
		}
	}
	return true
}

// errFDViolated signals a within-segment functional-dependency conflict.
var errFDViolated = errors.New("evolve: functional dependency violated")

// segFDMap builds one segment's det-values → dep-values map, failing on a
// local conflict.
func segFDMap(s *colstore.Segment, det, dep []string) (map[string]string, error) {
	detIDs := make([][]uint32, len(det))
	detDicts := make([]func(uint32) string, len(det))
	for i, cn := range det {
		c, err := s.Column(cn)
		if err != nil {
			return nil, err
		}
		detIDs[i] = c.RowIDs()
		detDicts[i] = c.Dict().Value
	}
	depIDs := make([][]uint32, len(dep))
	depDicts := make([]func(uint32) string, len(dep))
	for i, cn := range dep {
		c, err := s.Column(cn)
		if err != nil {
			return nil, err
		}
		depIDs[i] = c.RowIDs()
		depDicts[i] = c.Dict().Value
	}
	m := make(map[string]string, 64)
	var kb, vb strings.Builder
	for row := uint64(0); row < s.NumRows(); row++ {
		kb.Reset()
		vb.Reset()
		for i := range detIDs {
			kb.WriteString(detDicts[i](detIDs[i][row]))
			kb.WriteByte(0)
		}
		for i := range depIDs {
			vb.WriteString(depDicts[i](depIDs[i][row]))
			vb.WriteByte(0)
		}
		k, v := kb.String(), vb.String()
		if prev, ok := m[k]; ok {
			if prev != v {
				return nil, errFDViolated
			}
		} else {
			m[k] = v
		}
	}
	return m, nil
}

// fdHolds reports whether the functional dependency det → dep holds in t.
// One scan over the referenced columns.
func fdHolds(t *colstore.Table, det, dep []string) bool {
	if len(dep) == 0 {
		return true
	}
	detIDs := make([][]uint32, len(det))
	for i, cn := range det {
		c, err := t.Column(cn)
		if err != nil {
			return false
		}
		detIDs[i] = c.RowIDs()
	}
	depIDs := make([][]uint32, len(dep))
	for i, cn := range dep {
		c, err := t.Column(cn)
		if err != nil {
			return false
		}
		depIDs[i] = c.RowIDs()
	}
	seen := make(map[string]string, 1024)
	var kb, vb strings.Builder
	for row := uint64(0); row < t.NumRows(); row++ {
		kb.Reset()
		vb.Reset()
		for i := range detIDs {
			fmt.Fprintf(&kb, "%d\x00", detIDs[i][row])
		}
		for i := range depIDs {
			fmt.Fprintf(&vb, "%d\x00", depIDs[i][row])
		}
		k, v := kb.String(), vb.String()
		if prev, ok := seen[k]; ok {
			if prev != v {
				return false
			}
		} else {
			seen[k] = v
		}
	}
	return true
}

func intersect(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, c := range b {
		inB[c] = true
	}
	var out []string
	for _, c := range a {
		if inB[c] {
			out = append(out, c)
		}
	}
	return out
}

func minus(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, c := range b {
		inB[c] = true
	}
	var out []string
	for _, c := range a {
		if !inB[c] {
			out = append(out, c)
		}
	}
	return out
}

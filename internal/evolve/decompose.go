package evolve

import (
	"fmt"
	"sort"
	"strings"

	"cods/internal/colstore"
	"cods/internal/wah"
)

// DecomposeSpec describes DECOMPOSE TABLE: split the input into two output
// tables whose attribute sets union to the input's attributes and overlap
// in the common attributes (paper Table 1, §2.4).
type DecomposeSpec struct {
	OutS     string   // name of the first output table
	SColumns []string // attributes of the first output (includes the common attributes)
	OutT     string   // name of the second output table
	TColumns []string // attributes of the second output (includes the common attributes)
}

// DecomposeResult carries both outputs plus which side was reused
// unchanged (Property 1).
type DecomposeResult struct {
	S, T *colstore.Table
	// Reused names the output table that shares the input's columns with
	// zero data movement.
	Reused string
	// Deduplicated names the output table built by distinction +
	// filtering.
	Deduplicated string
}

// Decompose performs a lossless-join decomposition of r according to spec.
//
// The common attributes must be a candidate key of one output; that output
// is the deduplicated side and the other output is reused unchanged.
// Orientation is detected automatically: the side whose remaining
// attributes are functionally determined by the common attributes becomes
// the deduplicated side (preferring T when both qualify, matching the
// paper's presentation where S is unchanged).
func Decompose(r *colstore.Table, spec DecomposeSpec, opt Options) (*DecomposeResult, error) {
	if err := validateDecomposeSpec(r, spec); err != nil {
		return nil, err
	}
	common := intersect(spec.SColumns, spec.TColumns)
	if len(common) == 0 {
		return nil, fmt.Errorf("evolve: decomposition of %q has no common attributes; the join would be a cross product", r.Name())
	}

	// Orientation: which output is keyed by the common attributes?
	dedupT := true
	if opt.ValidateFD {
		okT := fdHolds(r, common, minus(spec.TColumns, common))
		okS := fdHolds(r, common, minus(spec.SColumns, common))
		switch {
		case okT:
			dedupT = true
		case okS:
			dedupT = false
		default:
			return nil, fmt.Errorf("evolve: decomposition of %q is lossy: common attributes %v are not a key of either output", r.Name(), common)
		}
	}

	sCols, sName, tCols, tName := spec.SColumns, spec.OutS, spec.TColumns, spec.OutT
	if !dedupT {
		sCols, tCols = tCols, sCols
		sName, tName = tName, sName
	}

	// Property 1: the unchanged output reuses the input's columns.
	opt.trace(fmt.Sprintf("reuse: creating %s from existing columns of %s (no data movement)", sName, r.Name()))
	s, err := r.Project(sName, sCols, r.Key())
	if err != nil {
		return nil, err
	}

	// Step 1 — distinction (paper §2.4 step 1): one tuple position in r
	// per distinct value of the common attributes.
	opt.trace(fmt.Sprintf("distinction: locating one representative row per distinct %v", common))
	positions, keyIDsByRank, err := distinction(r, common, opt)
	if err != nil {
		return nil, err
	}

	// Step 2 — bitmap filtering (paper §2.4 step 2): shrink every bitmap
	// of T's attributes by the position list.
	opt.trace(fmt.Sprintf("bitmap filtering: building %s's columns from compressed bitmaps", tName))
	t, err := filterColumns(r, tName, tCols, positions, keyIDsByRank, common, opt)
	if err != nil {
		return nil, err
	}

	res := &DecomposeResult{Reused: sName, Deduplicated: tName}
	if dedupT {
		res.S, res.T = s, t
	} else {
		res.S, res.T = t, s
	}
	return res, nil
}

func validateDecomposeSpec(r *colstore.Table, spec DecomposeSpec) error {
	if spec.OutS == "" || spec.OutT == "" {
		return fmt.Errorf("evolve: decomposition outputs must be named")
	}
	if spec.OutS == spec.OutT {
		return fmt.Errorf("evolve: decomposition outputs must have distinct names")
	}
	covered := make(map[string]bool)
	for _, set := range [][]string{spec.SColumns, spec.TColumns} {
		seen := make(map[string]bool)
		for _, c := range set {
			if !r.HasColumn(c) {
				return fmt.Errorf("evolve: table %q has no column %q", r.Name(), c)
			}
			if seen[c] {
				return fmt.Errorf("evolve: column %q listed twice in one output", c)
			}
			seen[c] = true
			covered[c] = true
		}
		if len(set) == 0 {
			return fmt.Errorf("evolve: decomposition output with no columns")
		}
	}
	for _, c := range r.ColumnNames() {
		if !covered[c] {
			return fmt.Errorf("evolve: the union of output attributes must equal %q's attributes; %q missing", r.Name(), c)
		}
	}
	return nil
}

// distinction returns the sorted position list over r's rows with one
// entry per distinct value combination of the given columns. For a
// single-attribute key it also returns the key's value id at each
// position, which lets the output key column be assembled directly (one
// bit per value, no filtering, shared dictionary).
func distinction(r *colstore.Table, columns []string, opt Options) (positions []uint64, keyIDsByRank []uint32, err error) {
	if len(columns) == 1 {
		// Fast path: the first position of each value's bitmap, found by
		// skipping leading zero fills on the compressed form — one
		// independent task per distinct value.
		col, err := r.Column(columns[0])
		if err != nil {
			return nil, nil, err
		}
		bc := col.ToBitmapEncoding()
		n := bc.DistinctCount()
		type rep struct {
			pos uint64
			id  uint32
		}
		reps := make([]rep, n)
		if err := opt.forEachErr(n, func(id int) error {
			p, ok := bc.BitmapForID(uint32(id)).FirstOne()
			if !ok {
				return fmt.Errorf("evolve: column %q value id %d has an empty bitmap", columns[0], id)
			}
			reps[id] = rep{pos: p, id: uint32(id)}
			return nil
		}); err != nil {
			return nil, nil, err
		}
		sort.Slice(reps, func(a, b int) bool { return reps[a].pos < reps[b].pos })
		positions = make([]uint64, n)
		keyIDsByRank = make([]uint32, n)
		for i, rp := range reps {
			positions[i] = rp.pos
			keyIDsByRank[i] = rp.id
		}
		return positions, keyIDsByRank, nil
	}
	// Composite key: one scan over the key columns' row-wise ids.
	ids := make([][]uint32, len(columns))
	for i, cn := range columns {
		col, err := r.Column(cn)
		if err != nil {
			return nil, nil, err
		}
		ids[i] = col.RowIDs()
	}
	seen := make(map[string]bool, 1024)
	var kb strings.Builder
	for row := uint64(0); row < r.NumRows(); row++ {
		kb.Reset()
		for i := range ids {
			fmt.Fprintf(&kb, "%d\x00", ids[i][row])
		}
		k := kb.String()
		if !seen[k] {
			seen[k] = true
			positions = append(positions, row)
		}
	}
	return positions, nil, nil
}

// filterColumns builds the deduplicated output table by filtering each of
// its attributes' bitmaps with the distinction position list.
func filterColumns(r *colstore.Table, name string, columns []string, positions []uint64, keyIDsByRank []uint32, key []string, opt Options) (*colstore.Table, error) {
	nrows := uint64(len(positions))
	outCols := make([]*colstore.Column, len(columns))
	for ci, cn := range columns {
		col, err := r.Column(cn)
		if err != nil {
			return nil, err
		}
		bc := col.ToBitmapEncoding()
		if keyIDsByRank != nil && len(key) == 1 && cn == key[0] {
			// Key column fast path: every value survives with exactly one
			// row, whose output position is its representative's rank.
			// Build each single-bit vector directly and share the
			// dictionary — no filtering, no re-interning.
			bitmaps := make([]*wah.Bitmap, bc.DistinctCount())
			for rank, id := range keyIDsByRank {
				bm := wah.New()
				bm.Add(uint64(rank))
				bitmaps[id] = bm
			}
			nc, err := colstore.NewColumnSharingDict(col.Name(), bc.Dict(), bitmaps, nrows)
			if err != nil {
				return nil, err
			}
			outCols[ci] = nc
			continue
		}
		n := bc.DistinctCount()
		values := make([]string, n)
		bitmaps := make([]*wah.Bitmap, n)
		opt.forEach(n, func(id int) {
			values[id] = bc.Dict().Value(uint32(id))
			bitmaps[id] = wah.FilterPositions(bc.BitmapForID(uint32(id)), positions)
		})
		nc, err := colstore.NewColumnFromBitmaps(col.Name(), values, bitmaps, nrows)
		if err != nil {
			return nil, err
		}
		outCols[ci] = nc
	}
	return colstore.NewTable(name, outCols, key)
}

// fdHolds reports whether the functional dependency det → dep holds in t.
// One scan over the referenced columns.
func fdHolds(t *colstore.Table, det, dep []string) bool {
	if len(dep) == 0 {
		return true
	}
	detIDs := make([][]uint32, len(det))
	for i, cn := range det {
		c, err := t.Column(cn)
		if err != nil {
			return false
		}
		detIDs[i] = c.RowIDs()
	}
	depIDs := make([][]uint32, len(dep))
	for i, cn := range dep {
		c, err := t.Column(cn)
		if err != nil {
			return false
		}
		depIDs[i] = c.RowIDs()
	}
	seen := make(map[string]string, 1024)
	var kb, vb strings.Builder
	for row := uint64(0); row < t.NumRows(); row++ {
		kb.Reset()
		vb.Reset()
		for i := range detIDs {
			fmt.Fprintf(&kb, "%d\x00", detIDs[i][row])
		}
		for i := range depIDs {
			fmt.Fprintf(&vb, "%d\x00", depIDs[i][row])
		}
		k, v := kb.String(), vb.String()
		if prev, ok := seen[k]; ok {
			if prev != v {
				return false
			}
		} else {
			seen[k] = v
		}
	}
	return true
}

func intersect(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, c := range b {
		inB[c] = true
	}
	var out []string
	for _, c := range a {
		if inB[c] {
			out = append(out, c)
		}
	}
	return out
}

func minus(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, c := range b {
		inB[c] = true
	}
	var out []string
	for _, c := range a {
		if !inB[c] {
			out = append(out, c)
		}
	}
	return out
}

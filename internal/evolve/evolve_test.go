package evolve

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cods/internal/colstore"
)

func buildTable(t *testing.T, name string, columns []string, key []string, rows [][]string) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder(name, columns, key)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// figure1R is the running example of the paper's §1.
func figure1R(t *testing.T) *colstore.Table {
	return buildTable(t, "R", []string{"Employee", "Skill", "Address"}, nil, [][]string{
		{"Jones", "Typing", "425 Grant Ave"},
		{"Jones", "Shorthand", "425 Grant Ave"},
		{"Roberts", "Light Cleaning", "747 Industrial Way"},
		{"Ellis", "Alchemy", "747 Industrial Way"},
		{"Jones", "Whittling", "425 Grant Ave"},
		{"Ellis", "Juggling", "747 Industrial Way"},
		{"Harrison", "Light Cleaning", "425 Grant Ave"},
	})
}

func assertSameTuples(t *testing.T, got, want *colstore.Table, label string) {
	t.Helper()
	g, w := got.TupleMultiset(), want.TupleMultiset()
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: tuple multisets differ\ngot:  %v\nwant: %v", label, got.SortedTuples(), want.SortedTuples())
	}
}

func TestDecomposeFigure1(t *testing.T) {
	r := figure1R(t)
	res, err := Decompose(r, DecomposeSpec{
		OutS: "S", SColumns: []string{"Employee", "Skill"},
		OutT: "T", TColumns: []string{"Employee", "Address"},
	}, Options{ValidateFD: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != "S" || res.Deduplicated != "T" {
		t.Fatalf("orientation: reused=%s dedup=%s", res.Reused, res.Deduplicated)
	}
	if res.S.NumRows() != 7 {
		t.Fatalf("S rows=%d want 7", res.S.NumRows())
	}
	// S shares R's columns: zero data movement (Property 1).
	rEmp, _ := r.Column("Employee")
	sEmp, _ := res.S.Column("Employee")
	if rEmp != sEmp {
		t.Fatal("S did not reuse R's Employee column")
	}
	// T is the paper's Figure 1 table T: 4 rows, one per employee.
	if res.T.NumRows() != 4 {
		t.Fatalf("T rows=%d want 4", res.T.NumRows())
	}
	wantT := buildTable(t, "T", []string{"Employee", "Address"}, nil, [][]string{
		{"Jones", "425 Grant Ave"},
		{"Roberts", "747 Industrial Way"},
		{"Ellis", "747 Industrial Way"},
		{"Harrison", "425 Grant Ave"},
	})
	assertSameTuples(t, res.T, wantT, "T")
	if err := res.T.Validate(); err != nil {
		t.Fatal(err)
	}
	// T is keyed by the common attribute.
	if got := res.T.Key(); len(got) != 1 || got[0] != "Employee" {
		t.Fatalf("T key=%v", got)
	}
	if err := res.T.ValidateKey(); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeOrientationSwap(t *testing.T) {
	// Declare the outputs the other way round: the FD Employee→Address
	// still puts the deduplicated side on the Employee+Address output.
	r := figure1R(t)
	res, err := Decompose(r, DecomposeSpec{
		OutS: "EA", SColumns: []string{"Employee", "Address"},
		OutT: "ES", TColumns: []string{"Employee", "Skill"},
	}, Options{ValidateFD: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != "ES" || res.Deduplicated != "EA" {
		t.Fatalf("orientation: reused=%s dedup=%s", res.Reused, res.Deduplicated)
	}
	if res.S.NumRows() != 4 || res.T.NumRows() != 7 {
		t.Fatalf("rows: S=%d T=%d", res.S.NumRows(), res.T.NumRows())
	}
}

func TestDecomposeLossyRejected(t *testing.T) {
	// Neither side's remainder is functionally determined by the common
	// attribute: both Skill and Address vary per Employee here.
	r := buildTable(t, "R", []string{"Employee", "Skill", "Address"}, nil, [][]string{
		{"Jones", "Typing", "addr1"},
		{"Jones", "Shorthand", "addr2"},
	})
	_, err := Decompose(r, DecomposeSpec{
		OutS: "S", SColumns: []string{"Employee", "Skill"},
		OutT: "T", TColumns: []string{"Employee", "Address"},
	}, Options{ValidateFD: true})
	if err == nil {
		t.Fatal("lossy decomposition should be rejected with ValidateFD")
	}
}

func TestDecomposeSpecValidation(t *testing.T) {
	r := figure1R(t)
	cases := []DecomposeSpec{
		{OutS: "S", SColumns: []string{"Employee", "Skill"}, OutT: "T", TColumns: []string{"Employee"}},            // Address not covered
		{OutS: "S", SColumns: []string{"Skill"}, OutT: "T", TColumns: []string{"Employee", "Address"}},             // no common attribute
		{OutS: "S", SColumns: []string{"Employee", "Nope"}, OutT: "T", TColumns: []string{"Employee", "Address"}},  // unknown column
		{OutS: "X", SColumns: []string{"Employee", "Skill"}, OutT: "X", TColumns: []string{"Employee", "Address"}}, // same output names
		{OutS: "", SColumns: []string{"Employee", "Skill"}, OutT: "T", TColumns: []string{"Employee", "Address"}},  // empty name
	}
	for i, spec := range cases {
		if _, err := Decompose(r, spec, Options{}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMergeKeyFKFigure1RoundTrip(t *testing.T) {
	r := figure1R(t)
	res, err := Decompose(r, DecomposeSpec{
		OutS: "S", SColumns: []string{"Employee", "Skill"},
		OutT: "T", TColumns: []string{"Employee", "Address"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeKeyFK(res.S, res.T, "R2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Reused != "S" {
		t.Fatalf("reused=%s", merged.Reused)
	}
	if err := merged.Table.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, merged.Table, r, "decompose∘merge identity")
	// Fact columns shared, not copied.
	sEmp, _ := res.S.Column("Employee")
	mEmp, _ := merged.Table.Column("Employee")
	if sEmp != mEmp {
		t.Fatal("merge did not reuse S's columns")
	}
}

func TestMergeKeyFKSwappedArguments(t *testing.T) {
	// Passing (dimension, fact) must auto-orient.
	r := figure1R(t)
	res, err := Decompose(r, DecomposeSpec{
		OutS: "S", SColumns: []string{"Employee", "Skill"},
		OutT: "T", TColumns: []string{"Employee", "Address"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeKeyFK(res.T, res.S, "R2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Reused != "S" {
		t.Fatalf("reused=%s want S", merged.Reused)
	}
	assertSameTuples(t, merged.Table, r, "swapped merge")
}

func TestMergeKeyFKForeignKeyViolation(t *testing.T) {
	s := buildTable(t, "S", []string{"K", "B"}, nil, [][]string{
		{"k1", "b1"}, {"k2", "b2"},
	})
	tt := buildTable(t, "T", []string{"K", "C"}, []string{"K"}, [][]string{
		{"k1", "c1"}, // k2 missing
	})
	if _, err := MergeKeyFK(s, tt, "R", Options{}); err == nil {
		t.Fatal("expected foreign-key violation")
	}
}

func TestMergeKeyFKNotApplicable(t *testing.T) {
	s := buildTable(t, "S", []string{"K", "B"}, nil, [][]string{
		{"k1", "b1"}, {"k1", "b2"},
	})
	tt := buildTable(t, "T", []string{"K", "C"}, nil, [][]string{
		{"k1", "c1"}, {"k1", "c2"},
	})
	if _, err := MergeKeyFK(s, tt, "R", Options{}); err == nil {
		t.Fatal("expected ErrNotKeyFK")
	}
	// Merge falls back to the general algorithm: 2x2 = 4 output rows.
	res, err := Merge(s, tt, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != "" {
		t.Fatalf("general merge reported reuse of %q", res.Reused)
	}
	if res.Table.NumRows() != 4 {
		t.Fatalf("rows=%d want 4", res.Table.NumRows())
	}
}

func TestMergeNoCommonColumns(t *testing.T) {
	a := buildTable(t, "A", []string{"X"}, nil, [][]string{{"1"}})
	b := buildTable(t, "B", []string{"Y"}, nil, [][]string{{"2"}})
	if _, err := Merge(a, b, "R", Options{}); err == nil {
		t.Fatal("expected error for join with no common attributes")
	}
}

// naiveJoin computes the expected equi-join result as a tuple multiset.
func naiveJoin(t *testing.T, s, tt *colstore.Table) map[string]int {
	t.Helper()
	common := intersect(s.ColumnNames(), tt.ColumnNames())
	tExtra := minus(tt.ColumnNames(), common)
	sRows, err := s.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tRows, err := tt.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sIdx := make(map[string]int)
	for i, c := range s.ColumnNames() {
		sIdx[c] = i
	}
	tIdx := make(map[string]int)
	for i, c := range tt.ColumnNames() {
		tIdx[c] = i
	}
	out := make(map[string]int)
	for _, sr := range sRows {
		for _, tr := range tRows {
			match := true
			for _, c := range common {
				if sr[sIdx[c]] != tr[tIdx[c]] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			tuple := append([]string{}, sr...)
			for _, c := range tExtra {
				tuple = append(tuple, tr[tIdx[c]])
			}
			out[strings.Join(tuple, "\x00")]++
		}
	}
	return out
}

// mergedMultiset reprojects the merge output to s's columns followed by
// t's extra columns so it can be compared with naiveJoin.
func mergedMultiset(t *testing.T, merged, s, tt *colstore.Table) map[string]int {
	t.Helper()
	common := intersect(s.ColumnNames(), tt.ColumnNames())
	order := append(append([]string{}, s.ColumnNames()...), minus(tt.ColumnNames(), common)...)
	proj, err := merged.Project("P", order, nil)
	if err != nil {
		t.Fatal(err)
	}
	return proj.TupleMultiset()
}

func TestMergeGeneralAgainstNaiveJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nS, nT := rng.Intn(40)+1, rng.Intn(40)+1
		d := rng.Intn(6) + 1
		var sRows, tRows [][]string
		for i := 0; i < nS; i++ {
			sRows = append(sRows, []string{fmt.Sprintf("j%d", rng.Intn(d)), fmt.Sprintf("b%d", rng.Intn(5))})
		}
		for i := 0; i < nT; i++ {
			tRows = append(tRows, []string{fmt.Sprintf("j%d", rng.Intn(d)), fmt.Sprintf("c%d", rng.Intn(5))})
		}
		s := buildTable(t, "S", []string{"J", "B"}, nil, sRows)
		tt := buildTable(t, "T", []string{"J", "C"}, nil, tRows)
		merged, err := MergeGeneral(s, tt, "R", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := mergedMultiset(t, merged, s, tt)
		want := naiveJoin(t, s, tt)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: join mismatch\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

func TestMergeGeneralClusteredLayout(t *testing.T) {
	// The output must be clustered by join value: each join value's
	// bitmap is one contiguous run.
	s := buildTable(t, "S", []string{"J", "B"}, nil, [][]string{
		{"x", "b1"}, {"y", "b2"}, {"x", "b3"},
	})
	tt := buildTable(t, "T", []string{"J", "C"}, nil, [][]string{
		{"y", "c1"}, {"x", "c2"}, {"x", "c3"},
	})
	merged, err := MergeGeneral(s, tt, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != 2*2+1*1 {
		t.Fatalf("rows=%d want 5", merged.NumRows())
	}
	j, _ := merged.Column("J")
	for id := 0; id < j.DistinctCount(); id++ {
		var nruns int
		j.BitmapForID(uint32(id)).Runs(func(start, length uint64) bool {
			nruns++
			return true
		})
		if nruns != 1 {
			t.Fatalf("join value %q occupies %d runs, want 1 (clustered)", j.Dict().Value(uint32(id)), nruns)
		}
	}
}

func TestMergeCompositeKeyFK(t *testing.T) {
	s := buildTable(t, "S", []string{"K1", "K2", "B"}, nil, [][]string{
		{"a", "x", "b1"}, {"a", "y", "b2"}, {"b", "x", "b3"}, {"a", "x", "b4"},
	})
	tt := buildTable(t, "T", []string{"K1", "K2", "C"}, nil, [][]string{
		{"a", "x", "c1"}, {"a", "y", "c2"}, {"b", "x", "c3"},
	})
	merged, err := MergeKeyFK(s, tt, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := mergedMultiset(t, merged.Table, s, tt)
	want := naiveJoin(t, s, tt)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("composite merge mismatch\ngot  %v\nwant %v", got, want)
	}
}

func TestDecomposeCompositeKey(t *testing.T) {
	// FD (K1,K2) → C with multiple B values per composite.
	r := buildTable(t, "R", []string{"K1", "K2", "B", "C"}, nil, [][]string{
		{"a", "x", "b1", "c-ax"},
		{"a", "x", "b2", "c-ax"},
		{"a", "y", "b3", "c-ay"},
		{"b", "x", "b4", "c-bx"},
		{"a", "x", "b5", "c-ax"},
	})
	res, err := Decompose(r, DecomposeSpec{
		OutS: "S", SColumns: []string{"K1", "K2", "B"},
		OutT: "T", TColumns: []string{"K1", "K2", "C"},
	}, Options{ValidateFD: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.T.NumRows() != 3 {
		t.Fatalf("T rows=%d want 3", res.T.NumRows())
	}
	merged, err := MergeKeyFK(res.S, res.T, "R2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, merged.Table, r, "composite decompose∘merge identity")
}

func TestQuickDecomposeMergeIdentity(t *testing.T) {
	// Property: for any table with FD K→C, decompose(K,B | K,C) followed
	// by key-FK merge reproduces the original tuple multiset.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(300) + 1
		d := rng.Intn(20) + 1
		addr := make(map[string]string)
		var rows [][]string
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(d))
			if _, ok := addr[k]; !ok {
				addr[k] = fmt.Sprintf("c%d", rng.Intn(5))
			}
			rows = append(rows, []string{k, fmt.Sprintf("b%d", rng.Intn(10)), addr[k]})
		}
		r := buildTable(t, "R", []string{"K", "B", "C"}, nil, rows)
		res, err := Decompose(r, DecomposeSpec{
			OutS: "S", SColumns: []string{"K", "B"},
			OutT: "T", TColumns: []string{"K", "C"},
		}, Options{ValidateFD: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if uint64(len(addr)) != res.T.NumRows() {
			t.Fatalf("trial %d: T rows=%d want %d", trial, res.T.NumRows(), len(addr))
		}
		merged, err := MergeKeyFK(res.S, res.T, "R2", Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSameTuples(t, merged.Table, r, fmt.Sprintf("trial %d", trial))
	}
}

func TestUnion(t *testing.T) {
	a := buildTable(t, "A", []string{"X", "Y"}, nil, [][]string{
		{"1", "p"}, {"2", "q"},
	})
	b := buildTable(t, "B", []string{"X", "Y"}, nil, [][]string{
		{"2", "q"}, {"3", "r"},
	})
	u, err := Union(a, b, "U", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 4 {
		t.Fatalf("rows=%d want 4 (bag union keeps duplicates)", u.NumRows())
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	want := buildTable(t, "W", []string{"X", "Y"}, nil, [][]string{
		{"1", "p"}, {"2", "q"}, {"2", "q"}, {"3", "r"},
	})
	assertSameTuples(t, u, want, "union")
	// Order: a's rows then b's rows.
	rows, _ := u.Rows(0, 0)
	if rows[0][0] != "1" || rows[3][0] != "3" {
		t.Fatalf("union order wrong: %v", rows)
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	a := buildTable(t, "A", []string{"X", "Y"}, nil, [][]string{{"1", "p"}})
	b := buildTable(t, "B", []string{"X", "Z"}, nil, [][]string{{"1", "p"}})
	if _, err := Union(a, b, "U", Options{}); err == nil {
		t.Fatal("expected schema mismatch error")
	}
	c := buildTable(t, "C", []string{"X"}, nil, [][]string{{"1"}})
	if _, err := Union(a, c, "U", Options{}); err == nil {
		t.Fatal("expected column count mismatch error")
	}
}

func TestPartition(t *testing.T) {
	r := figure1R(t)
	yes, no, err := Partition(r, "Address = '425 Grant Ave'", "P1", "P2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if yes.NumRows() != 4 || no.NumRows() != 3 {
		t.Fatalf("partition sizes %d/%d want 4/3", yes.NumRows(), no.NumRows())
	}
	// Partition then union restores the table.
	u, err := Union(yes, no, "U", Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, u, r, "partition∘union identity")
	if _, _, err := Partition(r, "bogus ~ 3", "a", "b", Options{}); err == nil {
		t.Fatal("bad condition should fail")
	}
	if _, _, err := Partition(r, "Missing = 'x'", "a", "b", Options{}); err == nil {
		t.Fatal("unknown column should fail")
	}
}

func TestAddDropColumn(t *testing.T) {
	r := figure1R(t)
	withGrade, err := AddColumnValues(r, "Grade", []string{"A", "B", "A", "C", "B", "A", "C"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withGrade.NumColumns() != 4 {
		t.Fatalf("columns=%d", withGrade.NumColumns())
	}
	if _, err := AddColumnValues(r, "Bad", []string{"x"}, Options{}); err == nil {
		t.Fatal("wrong value count should fail")
	}

	withDefault, err := AddColumnDefault(r, "Country", "USA", Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := withDefault.Column("Country")
	if col.DistinctCount() != 1 {
		t.Fatalf("default column distinct=%d", col.DistinctCount())
	}
	v, _ := col.ValueAt(6)
	if v != "USA" {
		t.Fatalf("default value=%q", v)
	}

	dropped, err := DropColumn(withDefault, "Country", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dropped.HasColumn("Country") {
		t.Fatal("column not dropped")
	}
	if _, err := DropColumn(r, "Missing", Options{}); err == nil {
		t.Fatal("dropping missing column should fail")
	}
}

func TestCopyShares(t *testing.T) {
	r := figure1R(t)
	c, err := Copy(r, "RCopy", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "RCopy" || c.NumRows() != r.NumRows() {
		t.Fatalf("copy: %v", c)
	}
	rc, _ := r.Column("Skill")
	cc, _ := c.Column("Skill")
	if rc != cc {
		t.Fatal("copy duplicated column data")
	}
}

func TestStatusTracing(t *testing.T) {
	r := figure1R(t)
	var steps []string
	opt := Options{Status: func(s string) { steps = append(steps, s) }}
	if _, err := Decompose(r, DecomposeSpec{
		OutS: "S", SColumns: []string{"Employee", "Skill"},
		OutT: "T", TColumns: []string{"Employee", "Address"},
	}, opt); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(steps, "\n")
	for _, want := range []string{"distinction", "bitmap filtering", "reuse"} {
		if !strings.Contains(joined, want) {
			t.Errorf("status trace missing %q:\n%s", want, joined)
		}
	}
}

func TestParallelismMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var rows [][]string
	addr := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(200))
		if _, ok := addr[k]; !ok {
			addr[k] = fmt.Sprintf("c%d", rng.Intn(20))
		}
		rows = append(rows, []string{k, fmt.Sprintf("b%d", rng.Intn(50)), addr[k]})
	}
	r := buildTable(t, "R", []string{"K", "B", "C"}, nil, rows)
	spec := DecomposeSpec{OutS: "S", SColumns: []string{"K", "B"}, OutT: "T", TColumns: []string{"K", "C"}}
	serial, err := Decompose(r, spec, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Decompose(r, spec, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, serial.T, parallel.T, "parallel vs serial decompose")
}

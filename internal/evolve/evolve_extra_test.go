package evolve

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cods/internal/colstore"
)

func TestMergeGeneralCompositeJoin(t *testing.T) {
	// Two join attributes, a key of neither side.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		var sRows, tRows [][]string
		for i := 0; i < rng.Intn(30)+1; i++ {
			sRows = append(sRows, []string{
				fmt.Sprintf("x%d", rng.Intn(3)), fmt.Sprintf("y%d", rng.Intn(3)),
				fmt.Sprintf("b%d", rng.Intn(4)),
			})
		}
		for i := 0; i < rng.Intn(30)+1; i++ {
			tRows = append(tRows, []string{
				fmt.Sprintf("x%d", rng.Intn(3)), fmt.Sprintf("y%d", rng.Intn(3)),
				fmt.Sprintf("c%d", rng.Intn(4)),
			})
		}
		s := buildTable(t, "S", []string{"J1", "J2", "B"}, nil, sRows)
		tt := buildTable(t, "T", []string{"J1", "J2", "C"}, nil, tRows)
		merged, err := MergeGeneral(s, tt, "R", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := mergedMultiset(t, merged, s, tt)
		want := naiveJoin(t, s, tt)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: composite join mismatch\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

func TestMergeAutoSelectsGeneralForComposite(t *testing.T) {
	s := buildTable(t, "S", []string{"J1", "J2", "B"}, nil, [][]string{
		{"x", "p", "b1"}, {"x", "p", "b2"},
	})
	tt := buildTable(t, "T", []string{"J1", "J2", "C"}, nil, [][]string{
		{"x", "p", "c1"}, {"x", "p", "c2"},
	})
	res, err := Merge(s, tt, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != "" || res.Table.NumRows() != 4 {
		t.Fatalf("res=%+v rows=%d", res.Reused, res.Table.NumRows())
	}
}

// rleTable builds a table whose columns are RLE encoded, to verify the
// evolution algorithms accept the alternate encoding (§2.2: RLE for
// sorted columns) by converting on demand.
func rleTable(t *testing.T, name string, columns []string, rows [][]string) *colstore.Table {
	t.Helper()
	cols := make([]*colstore.Column, len(columns))
	for c := range columns {
		vals := make([]string, len(rows))
		for r := range rows {
			vals[r] = rows[r][c]
		}
		cols[c] = colstore.NewRLEColumn(columns[c], vals)
	}
	tab, err := colstore.NewTable(name, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDecomposeRLEInput(t *testing.T) {
	rows := [][]string{
		// Sorted by K: the RLE-friendly shape.
		{"k1", "b1", "c1"},
		{"k1", "b2", "c1"},
		{"k1", "b3", "c1"},
		{"k2", "b1", "c2"},
		{"k2", "b4", "c2"},
		{"k3", "b1", "c3"},
	}
	r := rleTable(t, "R", []string{"K", "B", "C"}, rows)
	kcol, _ := r.Column("K")
	if kcol.Encoding() != colstore.EncodingRLE {
		t.Fatal("test setup: K not RLE")
	}
	res, err := Decompose(r, DecomposeSpec{
		OutS: "S", SColumns: []string{"K", "B"},
		OutT: "T", TColumns: []string{"K", "C"},
	}, Options{ValidateFD: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.T.NumRows() != 3 {
		t.Fatalf("T rows=%d", res.T.NumRows())
	}
	want := buildTable(t, "W", []string{"K", "C"}, nil, [][]string{
		{"k1", "c1"}, {"k2", "c2"}, {"k3", "c3"},
	})
	assertSameTuples(t, res.T, want, "RLE decompose")
}

func TestMergeKeyFKRLEInput(t *testing.T) {
	s := rleTable(t, "S", []string{"K", "B"}, [][]string{
		{"k1", "b1"}, {"k1", "b2"}, {"k2", "b3"},
	})
	dim := rleTable(t, "T", []string{"K", "C"}, [][]string{
		{"k1", "c1"}, {"k2", "c2"},
	})
	res, err := MergeKeyFK(s, dim, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := buildTable(t, "W", []string{"K", "B", "C"}, nil, [][]string{
		{"k1", "b1", "c1"}, {"k1", "b2", "c1"}, {"k2", "b3", "c2"},
	})
	assertSameTuples(t, res.Table, want, "RLE merge")
}

func TestDecomposeKeyColumnSharesDictionary(t *testing.T) {
	// The deduplicated output's key column must carry every source key
	// value with exactly one row (the fast path that shares the source
	// dictionary).
	rng := rand.New(rand.NewSource(23))
	var rows [][]string
	cOf := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(120))
		if _, ok := cOf[k]; !ok {
			cOf[k] = fmt.Sprintf("c%d", rng.Intn(9))
		}
		rows = append(rows, []string{k, fmt.Sprintf("b%d", i), cOf[k]})
	}
	r := buildTable(t, "R", []string{"K", "B", "C"}, nil, rows)
	res, err := Decompose(r, DecomposeSpec{
		OutS: "S", SColumns: []string{"K", "B"},
		OutT: "T", TColumns: []string{"K", "C"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kcol, _ := res.T.Column("K")
	if kcol.DistinctCount() != len(cOf) {
		t.Fatalf("key distinct=%d want %d", kcol.DistinctCount(), len(cOf))
	}
	if err := res.T.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.T.ValidateKey(); err != nil {
		t.Fatal(err)
	}
	// Row order of T follows first occurrence in R.
	firstSeen := map[string]bool{}
	var wantOrder []string
	for _, row := range rows {
		if !firstSeen[row[0]] {
			firstSeen[row[0]] = true
			wantOrder = append(wantOrder, row[0])
		}
	}
	got, _ := res.T.Rows(0, 0)
	for i, w := range wantOrder {
		if got[i][0] != w {
			t.Fatalf("T row %d key=%q want %q", i, got[i][0], w)
		}
	}
}

func TestGeneralMergeEmptyIntersection(t *testing.T) {
	s := buildTable(t, "S", []string{"J", "B"}, nil, [][]string{{"x", "b"}})
	tt := buildTable(t, "T", []string{"J", "C"}, nil, [][]string{{"y", "c"}})
	merged, err := MergeGeneral(s, tt, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != 0 {
		t.Fatalf("rows=%d want 0", merged.NumRows())
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnionDisjointDictionaries(t *testing.T) {
	// Values present in only one input must still union correctly.
	a := buildTable(t, "A", []string{"X"}, nil, [][]string{{"only-a"}, {"shared"}})
	b := buildTable(t, "B", []string{"X"}, nil, [][]string{{"only-b"}, {"shared"}})
	u, err := Union(a, b, "U", Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := u.Column("X")
	if col.DistinctCount() != 3 {
		t.Fatalf("distinct=%d", col.DistinctCount())
	}
	if col.BitmapFor("shared").Count() != 2 {
		t.Fatal("shared value lost an occurrence")
	}
	if p, _ := col.BitmapFor("only-b").FirstOne(); p != 2 {
		t.Fatalf("only-b at position %d want 2", p)
	}
}

package evolve

import (
	"errors"
	"fmt"
	"strings"

	"cods/internal/colstore"
	"cods/internal/dict"
	"cods/internal/wah"
)

// ErrNotKeyFK reports that neither input of a mergence is keyed by the
// common attributes, so the key–foreign-key algorithm does not apply and
// the general two-pass algorithm must be used.
var ErrNotKeyFK = errors.New("evolve: common attributes are not a key of either input")

// MergeResult carries the merged table and which input's columns were
// reused unchanged ("" for general mergence, where neither is reusable).
type MergeResult struct {
	Table  *colstore.Table
	Reused string
}

// Merge joins s and t on their common attributes into a single table
// (MERGE TABLES, paper §2.5). It applies the key–foreign-key algorithm
// when the common attributes form a key of one input and falls back to the
// general two-pass algorithm otherwise.
func Merge(s, t *colstore.Table, outName string, opt Options) (*MergeResult, error) {
	res, err := MergeKeyFK(s, t, outName, opt)
	if errors.Is(err, ErrNotKeyFK) {
		var tab *colstore.Table
		tab, err = MergeGeneral(s, t, outName, opt)
		if err != nil {
			return nil, err
		}
		return &MergeResult{Table: tab}, nil
	}
	return res, err
}

// MergeKeyFK performs key–foreign-key based mergence (paper §2.5.1). The
// common attributes of s and t must form a key of one input (the
// dimension); the other input (the fact side) has its columns reused
// verbatim, and each non-key dimension attribute is reconstructed as
// compressed OR combinations of the fact side's key bitmap vectors.
//
// Every fact key value must exist in the dimension (foreign-key
// integrity); a dangling reference is an error rather than a silent row
// drop, because dropped rows would make the fact columns non-reusable.
//
// Segment-wise (the default), the map phase handles one fact segment at a
// time: its columns are adopted verbatim (zero copy, even on
// multi-segment fact tables, where the monolithic oracle would stitch)
// and the dimension's non-key columns are generated from the segment's
// local key bitmaps. The merge phase is the dimension-side preparation
// shared by all map tasks: the key → row index and a cross-segment union
// dictionary per generated column (RemapInto). One output segment per
// fact segment.
func MergeKeyFK(s, t *colstore.Table, outName string, opt Options) (*MergeResult, error) {
	common, err := commonColumns(s, t)
	if err != nil {
		return nil, err
	}
	if !opt.Rebuild {
		return mergeKeyFKSegmented(s, t, outName, common, opt)
	}
	return mergeKeyFKRebuild(s, t, outName, common, opt)
}

// mergeKeyFKRebuild is the monolithic oracle: it consumes the stitched
// whole-table view of both inputs and emits a single-segment output.
func mergeKeyFKRebuild(s, t *colstore.Table, outName string, common []string, opt Options) (*MergeResult, error) {
	fact, dim := s, t
	if !keyedBy(t, common) {
		if !keyedBy(s, common) {
			return nil, fmt.Errorf("%w (common: %v)", ErrNotKeyFK, common)
		}
		fact, dim = t, s
	}
	opt.trace(fmt.Sprintf("mergence: reusing %s's columns; generating %s's non-key columns by OR-combining key vectors", fact.Name(), dim.Name()))

	// Map each fact row group (one per fact key value or composite) to
	// the dimension row it joins with.
	groups, err := factGroups(fact, dim, common, opt)
	if err != nil {
		return nil, err
	}

	outCols := append([]*colstore.Column(nil), columnsOf(fact)...)
	for _, cn := range minus(dim.ColumnNames(), common) {
		dimCol, err := dim.Column(cn)
		if err != nil {
			return nil, err
		}
		rowIDs := dimCol.RowIDs()
		n := dimCol.DistinctCount()
		// Group the fact-side bitmap vectors by the dimension value they
		// produce, then OR each group on compressed form.
		grouped := make([][]*wah.Bitmap, n)
		for _, g := range groups {
			u := rowIDs[g.dimRow]
			grouped[u] = append(grouped[u], g.factBitmap)
		}
		values := make([]string, n)
		bitmaps := make([]*wah.Bitmap, n)
		opt.forEach(n, func(u int) {
			values[u] = dimCol.Dict().Value(uint32(u))
			if len(grouped[u]) == 0 {
				bitmaps[u] = wah.New()
				return
			}
			bm := wah.OrAll(grouped[u])
			bm.Extend(fact.NumRows())
			bitmaps[u] = bm
		})
		nc, err := colstore.NewColumnFromBitmaps(cn, values, bitmaps, fact.NumRows())
		if err != nil {
			return nil, err
		}
		outCols = append(outCols, nc)
	}
	out, err := colstore.NewTable(outName, outCols, fact.Key())
	if err != nil {
		return nil, err
	}
	return &MergeResult{Table: out, Reused: fact.Name()}, nil
}

// factGroup associates the bitmap of all fact rows sharing one key value
// with the dimension row holding that key.
type factGroup struct {
	factBitmap *wah.Bitmap
	dimRow     uint64
}

func factGroups(fact, dim *colstore.Table, common []string, opt Options) ([]factGroup, error) {
	if len(common) == 1 {
		// Single-attribute key: fact groups are exactly the fact key
		// column's per-value bitmaps; the dimension row is the single set
		// bit of the dimension key's bitmap. Each value's lookup and
		// leading-fill skip is independent work.
		factKey, err := fact.Column(common[0])
		if err != nil {
			return nil, err
		}
		dimKey, err := dim.Column(common[0])
		if err != nil {
			return nil, err
		}
		fk, dk := factKey.ToBitmapEncoding(), dimKey.ToBitmapEncoding()
		groups := make([]factGroup, fk.DistinctCount())
		if err := opt.forEachErr(fk.DistinctCount(), func(id int) error {
			value := fk.Dict().Value(uint32(id))
			dimID := dk.Dict().Lookup(value)
			if dimID == dict.NoID {
				return fmt.Errorf("evolve: foreign-key violation: %s value %q of %s has no match in %s", common[0], value, fact.Name(), dim.Name())
			}
			dimRow, ok := dk.BitmapForID(dimID).FirstOne()
			if !ok {
				return fmt.Errorf("evolve: dimension %s has an empty bitmap for %q", dim.Name(), value)
			}
			groups[id] = factGroup{factBitmap: fk.BitmapForID(uint32(id)), dimRow: dimRow}
			return nil
		}); err != nil {
			return nil, err
		}
		return groups, nil
	}
	// Composite key: one scan of the dimension to index composites, one
	// scan of the fact to build one bitmap per referenced dimension row.
	dimIndex, err := compositeRowIndex(dim, common)
	if err != nil {
		return nil, err
	}
	factIDs := make([][]uint32, len(common))
	factDicts := make([]func(uint32) string, len(common))
	for i, cn := range common {
		c, err := fact.Column(cn)
		if err != nil {
			return nil, err
		}
		factIDs[i] = c.RowIDs()
		factDicts[i] = c.Dict().Value
	}
	builders := make(map[uint64]*wah.Bitmap)
	var order []uint64
	var kb strings.Builder
	for row := uint64(0); row < fact.NumRows(); row++ {
		kb.Reset()
		for i := range factIDs {
			kb.WriteString(factDicts[i](factIDs[i][row]))
			kb.WriteByte(0)
		}
		dimRow, ok := dimIndex[kb.String()]
		if !ok {
			return nil, fmt.Errorf("evolve: foreign-key violation: %s row %d has no match in %s on %v", fact.Name(), row, dim.Name(), common)
		}
		bm := builders[dimRow]
		if bm == nil {
			bm = wah.New()
			builders[dimRow] = bm
			order = append(order, dimRow)
		}
		bm.Add(row)
	}
	groups := make([]factGroup, 0, len(order))
	for _, dr := range order {
		groups = append(groups, factGroup{factBitmap: builders[dr], dimRow: dr})
	}
	return groups, nil
}

// compositeRowIndex maps each composite key value of the given columns to
// its row, failing on duplicates (the columns must be a key).
func compositeRowIndex(t *colstore.Table, columns []string) (map[string]uint64, error) {
	ids := make([][]uint32, len(columns))
	dicts := make([]func(uint32) string, len(columns))
	for i, cn := range columns {
		c, err := t.Column(cn)
		if err != nil {
			return nil, err
		}
		ids[i] = c.RowIDs()
		dicts[i] = c.Dict().Value
	}
	idx := make(map[string]uint64, t.NumRows())
	var kb strings.Builder
	for row := uint64(0); row < t.NumRows(); row++ {
		kb.Reset()
		for i := range ids {
			kb.WriteString(dicts[i](ids[i][row]))
			kb.WriteByte(0)
		}
		k := kb.String()
		if _, dup := idx[k]; dup {
			return nil, fmt.Errorf("evolve: %v is not a key of %s: duplicate %q", columns, t.Name(), strings.ReplaceAll(k, "\x00", ","))
		}
		idx[k] = row
	}
	return idx, nil
}

// keyedBy reports whether the given columns form a candidate key of t.
func keyedBy(t *colstore.Table, columns []string) bool {
	if len(columns) == 1 {
		c, err := t.Column(columns[0])
		if err != nil {
			return false
		}
		return uint64(c.DistinctCount()) == t.NumRows()
	}
	_, err := compositeRowIndex(t, columns)
	return err == nil
}

func commonColumns(s, t *colstore.Table) ([]string, error) {
	common := intersect(s.ColumnNames(), t.ColumnNames())
	if len(common) == 0 {
		return nil, fmt.Errorf("evolve: tables %q and %q share no attributes to join on", s.Name(), t.Name())
	}
	return common, nil
}

func columnsOf(t *colstore.Table) []*colstore.Column {
	cols := make([]*colstore.Column, t.NumColumns())
	for i := range cols {
		cols[i] = t.ColumnAt(i)
	}
	return cols
}

// mergeKeyFKSegmented is the segment-wise key–foreign-key mergence. The
// dimension-side inputs (key index, per-column union dictionaries and
// per-row global value ids) are prepared once; each fact segment is then
// an independent map task producing one output segment.
func mergeKeyFKSegmented(s, t *colstore.Table, outName string, common []string, opt Options) (*MergeResult, error) {
	fact, dim := s, t
	if !keyedBySegmented(t, common) {
		if !keyedBySegmented(s, common) {
			return nil, fmt.Errorf("%w (common: %v)", ErrNotKeyFK, common)
		}
		fact, dim = t, s
	}
	factSegs := fact.Segments()
	opt.trace(fmt.Sprintf("mergence map: %d fact segments of %s adopt their columns unchanged; %s's non-key columns generated per segment", len(factSegs), fact.Name(), dim.Name()))

	dimIndex, err := segRowIndex(dim, common)
	if err != nil {
		return nil, err
	}
	gen := minus(dim.ColumnNames(), common)
	genIDs := make([][]uint32, len(gen))
	genDicts := make([]*dict.Dict, len(gen))
	for i, cn := range gen {
		ids, d, err := rowIDsRemapped(dim, cn, opt)
		if err != nil {
			return nil, err
		}
		genIDs[i], genDicts[i] = ids, d
	}
	schema := append(fact.ColumnNames(), gen...)

	outSegs := make([]*colstore.Segment, len(factSegs))
	if err := opt.forEachErr(len(factSegs), func(i int) error {
		seg, err := mergeKeyFKSegment(factSegs[i], fact.Name(), dim.Name(), schema, common, gen, genIDs, genDicts, dimIndex, opt)
		outSegs[i] = seg
		return err
	}); err != nil {
		return nil, err
	}
	out, err := colstore.NewSegmented(outName, schema, outSegs, fact.Key())
	if err != nil {
		return nil, err
	}
	return &MergeResult{Table: out, Reused: fact.Name()}, nil
}

// mergeKeyFKSegment builds one output segment from one fact segment: the
// fact columns are shared verbatim and each generated dimension column is
// the OR-combination of this segment's local key bitmaps, grouped by the
// dimension value they join to.
func mergeKeyFKSegment(fs *colstore.Segment, factName, dimName string, schema, common, gen []string, genIDs [][]uint32, genDicts []*dict.Dict, dimIndex map[string]uint64, opt Options) (*colstore.Segment, error) {
	groups, err := localFactGroups(fs, factName, dimName, common, dimIndex)
	if err != nil {
		return nil, err
	}
	sb := colstore.NewSegmentBuilder(schema)
	for ci := 0; ci < fs.NumColumns(); ci++ {
		if err := sb.SetShared(ci, fs.ColumnAt(ci)); err != nil {
			return nil, err
		}
	}
	for gi := range gen {
		d, ids := genDicts[gi], genIDs[gi]
		grouped := make([][]*wah.Bitmap, d.Len())
		for _, g := range groups {
			u := ids[g.dimRow]
			grouped[u] = append(grouped[u], g.factBitmap)
		}
		values := make([]string, d.Len())
		bitmaps := make([]*wah.Bitmap, d.Len())
		opt.forEach(d.Len(), func(u int) {
			values[u] = d.Value(uint32(u))
			if len(grouped[u]) == 0 {
				return
			}
			bm := wah.OrAll(grouped[u])
			bm.Extend(fs.NumRows())
			bitmaps[u] = bm
		})
		if err := sb.SetFromBitmaps(fs.NumColumns()+gi, values, bitmaps, fs.NumRows()); err != nil {
			return nil, err
		}
	}
	return sb.Finish()
}

// localFactGroups builds one factGroup per referenced dimension row from
// a single fact segment: factBitmap positions are segment-local, dimRow
// is global. A fact value missing from the dimension index is a
// foreign-key violation, exactly as on the monolithic path.
func localFactGroups(fs *colstore.Segment, factName, dimName string, common []string, dimIndex map[string]uint64) ([]factGroup, error) {
	if len(common) == 1 {
		factKey, err := fs.Column(common[0])
		if err != nil {
			return nil, err
		}
		fk := factKey.ToBitmapEncoding()
		groups := make([]factGroup, fk.DistinctCount())
		for id := 0; id < fk.DistinctCount(); id++ {
			value := fk.Dict().Value(uint32(id))
			dimRow, ok := dimIndex[value+"\x00"]
			if !ok {
				return nil, fmt.Errorf("evolve: foreign-key violation: %s value %q of %s has no match in %s", common[0], value, factName, dimName)
			}
			groups[id] = factGroup{factBitmap: fk.BitmapForID(uint32(id)), dimRow: dimRow}
		}
		return groups, nil
	}
	ids := make([][]uint32, len(common))
	dicts := make([]func(uint32) string, len(common))
	for i, cn := range common {
		c, err := fs.Column(cn)
		if err != nil {
			return nil, err
		}
		ids[i] = c.RowIDs()
		dicts[i] = c.Dict().Value
	}
	builders := make(map[uint64]*wah.Bitmap)
	var order []uint64
	var kb strings.Builder
	for row := uint64(0); row < fs.NumRows(); row++ {
		kb.Reset()
		for i := range ids {
			kb.WriteString(dicts[i](ids[i][row]))
			kb.WriteByte(0)
		}
		dimRow, ok := dimIndex[kb.String()]
		if !ok {
			return nil, fmt.Errorf("evolve: foreign-key violation: %s row %d has no match in %s on %v", factName, row, dimName, common)
		}
		bm := builders[dimRow]
		if bm == nil {
			bm = wah.New()
			builders[dimRow] = bm
			order = append(order, dimRow)
		}
		bm.Add(row)
	}
	groups := make([]factGroup, 0, len(order))
	for _, dr := range order {
		groups = append(groups, factGroup{factBitmap: builders[dr], dimRow: dr})
	}
	return groups, nil
}

package evolve

import (
	"fmt"

	"cods/internal/colstore"
	"cods/internal/expr"
	"cods/internal/wah"
)

// Union implements UNION TABLES: combine the tuples of two tables with the
// same schema into one table.
//
// Segment-wise (the default) this is pure metadata: both inputs' segments
// are immutable, so the output is a's segment list followed by b's — zero
// data movement, constant time. The monolithic oracle (opt.Rebuild)
// instead concatenates each output value's bitmap: the first table's
// vector with the second table's vector at a row offset — compressed fill
// arithmetic, no decompression (paper Table 1; §2.3 classifies it as data
// movement without data change). Both produce the same row sequence: a's
// rows then b's.
func Union(a, b *colstore.Table, outName string, opt Options) (*colstore.Table, error) {
	an, bn := a.ColumnNames(), b.ColumnNames()
	if len(an) != len(bn) {
		return nil, fmt.Errorf("evolve: union of %q and %q: schemas differ (%d vs %d columns)", a.Name(), b.Name(), len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			return nil, fmt.Errorf("evolve: union of %q and %q: column %d is %q vs %q", a.Name(), b.Name(), i, an[i], bn[i])
		}
	}
	if !opt.Rebuild {
		segs := append(a.Segments(), b.Segments()...)
		opt.trace(fmt.Sprintf("union: adopting %d segments of %s and %d of %s unchanged (no data movement)",
			a.NumSegments(), a.Name(), b.NumSegments(), b.Name()))
		// A union generally breaks key uniqueness; the output carries no key.
		return colstore.NewSegmented(outName, an, segs, nil)
	}
	opt.trace(fmt.Sprintf("union: concatenating %s's bitmap vectors after %s's at row offset %d", b.Name(), a.Name(), a.NumRows()))
	outRows := a.NumRows() + b.NumRows()
	cols := make([]*colstore.Column, len(an))
	for i, cn := range an {
		ca, err := a.Column(cn)
		if err != nil {
			return nil, err
		}
		cb, err := b.Column(cn)
		if err != nil {
			return nil, err
		}
		ba, bb := ca.ToBitmapEncoding(), cb.ToBitmapEncoding()
		// Output dictionary: a's values then b's new values.
		var values []string
		index := make(map[string]int)
		for id := 0; id < ba.DistinctCount(); id++ {
			v := ba.Dict().Value(uint32(id))
			index[v] = len(values)
			values = append(values, v)
		}
		for id := 0; id < bb.DistinctCount(); id++ {
			v := bb.Dict().Value(uint32(id))
			if _, ok := index[v]; !ok {
				index[v] = len(values)
				values = append(values, v)
			}
		}
		bitmaps := make([]*wah.Bitmap, len(values))
		opt.forEach(len(values), func(vi int) {
			v := values[vi]
			var bm *wah.Bitmap
			if id := ba.Dict().Lookup(v); id != noID {
				bm = ba.BitmapForID(id).Clone()
			} else {
				bm = wah.New()
			}
			bm.Extend(a.NumRows())
			if id := bb.Dict().Lookup(v); id != noID {
				bm.Concat(bb.BitmapForID(id))
			}
			bitmaps[vi] = bm
		})
		nc, err := colstore.NewColumnFromBitmaps(cn, values, bitmaps, outRows)
		if err != nil {
			return nil, err
		}
		cols[i] = nc
	}
	// A union generally breaks key uniqueness; the output carries no key.
	return colstore.NewTable(outName, cols, nil)
}

const noID = ^uint32(0)

// Partition implements PARTITION TABLE: split a table's tuples into two
// tables with the same schema according to a predicate. The predicate is
// evaluated once per distinct value into a mask bitmap; both outputs are
// then produced by bitmap filtering with the mask and its complement.
//
// Partition is segment-wise by construction: predicate evaluation runs
// against each segment's local dictionaries (Table.EqBitmap and
// ScanWhereBitmap concatenate per-segment results) and FilterRowsP slices
// the mask along segment boundaries, emitting one output segment per
// input segment that contributes rows. opt.Rebuild changes nothing here —
// the monolithic path and the segment-wise path are the same code.
func Partition(t *colstore.Table, condition string, outYes, outNo string, opt Options) (yes, no *colstore.Table, err error) {
	pred, err := expr.Parse(condition)
	if err != nil {
		return nil, nil, err
	}
	opt.trace(fmt.Sprintf("partition: evaluating %s against %d segments' local dictionaries", pred, t.NumSegments()))
	mask, err := pred.EvalP(t, opt.Parallelism)
	if err != nil {
		return nil, nil, err
	}
	opt.trace(fmt.Sprintf("partition: filtering %d rows into %s, %d into %s segment-wise", mask.Count(), outYes, mask.Len()-mask.Count(), outNo))
	yes, err = t.FilterRowsP(outYes, mask, opt.Parallelism)
	if err != nil {
		return nil, nil, err
	}
	no, err = t.FilterRowsP(outNo, mask.Not(), opt.Parallelism)
	if err != nil {
		return nil, nil, err
	}
	return yes, no, nil
}

// AddColumnValues implements ADD COLUMN with explicit per-row data loaded
// from user input (paper Table 1). values must have one entry per row.
func AddColumnValues(t *colstore.Table, name string, values []string, opt Options) (*colstore.Table, error) {
	if uint64(len(values)) != t.NumRows() {
		return nil, fmt.Errorf("evolve: add column %q: %d values for %d rows", name, len(values), t.NumRows())
	}
	opt.trace(fmt.Sprintf("add column: building bitmap index for %q", name))
	return t.WithColumnAdded(colstore.NewColumnFromValues(name, values))
}

// AddColumnDefault implements ADD COLUMN with a default value: the new
// column is a single all-ones fill bitmap, constructed in O(1) regardless
// of row count.
func AddColumnDefault(t *colstore.Table, name, defaultValue string, opt Options) (*colstore.Table, error) {
	opt.trace(fmt.Sprintf("add column: single fill vector for default %q", defaultValue))
	bm := wah.New()
	bm.AppendRun(1, t.NumRows())
	col, err := colstore.NewColumnFromBitmaps(name, []string{defaultValue}, []*wah.Bitmap{bm}, t.NumRows())
	if err != nil {
		return nil, err
	}
	if t.NumRows() == 0 {
		// An empty table still needs the column object.
		col = colstore.NewColumnFromValues(name, nil)
	}
	return t.WithColumnAdded(col)
}

// DropColumn implements DROP COLUMN: the column object and its bitmaps are
// dropped; no other column is touched.
func DropColumn(t *colstore.Table, name string, opt Options) (*colstore.Table, error) {
	opt.trace(fmt.Sprintf("drop column: removing %q", name))
	return t.WithColumnDropped(name)
}

// Copy implements COPY TABLE. Columns are immutable, so a copy shares all
// column data with the source — constant time. It cannot currently fail,
// but carries the same fallible signature as every other operator so core
// callers need no special case.
func Copy(t *colstore.Table, outName string, opt Options) (*colstore.Table, error) {
	opt.trace(fmt.Sprintf("copy: sharing %s's columns as %s", t.Name(), outName))
	return t.WithName(outName), nil
}

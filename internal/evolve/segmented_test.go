package evolve

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cods/internal/colstore"
)

// buildSegmentedTable assembles a table whose base is one segment per row
// chunk, so the segment-wise operator paths have real segment boundaries
// to cross (dictionaries overlap between chunks whenever values repeat).
func buildSegmentedTable(t *testing.T, name string, columns []string, key []string, chunks [][][]string) *colstore.Table {
	t.Helper()
	var segs []*colstore.Segment
	for _, rows := range chunks {
		segs = append(segs, buildTable(t, name, columns, nil, rows).Segments()...)
	}
	tab, err := colstore.NewSegmented(name, columns, segs, key)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// assertIdenticalRows asserts both tables hold byte-identical row
// sequences over the same schema — the segment-wise paths must reproduce
// the monolithic row order exactly, not just the same multiset.
func assertIdenticalRows(t *testing.T, got, want *colstore.Table, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.ColumnNames(), want.ColumnNames()) {
		t.Fatalf("%s: schemas differ: %v vs %v", label, got.ColumnNames(), want.ColumnNames())
	}
	g, err := got.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := want.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: row sequences differ\ngot:  %v\nwant: %v", label, g, w)
	}
}

// figure1Segmented is figure1R split into three segments with the
// duplicate employees straddling segment boundaries, so distinction must
// dedup across segments.
func figure1Segmented(t *testing.T) *colstore.Table {
	cols := []string{"Employee", "Skill", "Address"}
	return buildSegmentedTable(t, "R", cols, nil, [][][]string{
		{
			{"Jones", "Typing", "425 Grant Ave"},
			{"Jones", "Shorthand", "425 Grant Ave"},
			{"Roberts", "Light Cleaning", "747 Industrial Way"},
		},
		{
			{"Ellis", "Alchemy", "747 Industrial Way"},
			{"Jones", "Whittling", "425 Grant Ave"},
		},
		{
			{"Ellis", "Juggling", "747 Industrial Way"},
			{"Harrison", "Light Cleaning", "425 Grant Ave"},
		},
	})
}

func TestDecomposeSegmentedMatchesRebuild(t *testing.T) {
	spec := DecomposeSpec{
		OutS: "S", SColumns: []string{"Employee", "Skill"},
		OutT: "T", TColumns: []string{"Employee", "Address"},
	}
	seg, err := Decompose(figure1Segmented(t), spec, Options{ValidateFD: true})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Decompose(figure1Segmented(t), spec, Options{ValidateFD: true, Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, seg.S, mono.S, "S")
	assertIdenticalRows(t, seg.T, mono.T, "T")
	if seg.Reused != mono.Reused || seg.Deduplicated != mono.Deduplicated {
		t.Fatalf("orientation differs: %q/%q vs %q/%q", seg.Reused, seg.Deduplicated, mono.Reused, mono.Deduplicated)
	}
	// The deduplicated output must stay segmented: every input segment
	// that contributed a surviving representative yields an output
	// segment, rather than the whole table being restitched. All three
	// input segments contribute first occurrences here.
	dedup := seg.T
	if seg.Deduplicated == seg.S.Name() {
		dedup = seg.S
	}
	if dedup.NumSegments() != 3 {
		t.Fatalf("deduplicated output has %d segments, want 3 (segment-wise path must not restitch)", dedup.NumSegments())
	}
}

func TestDecomposeSegmentedCompositeCommon(t *testing.T) {
	cols := []string{"A", "B", "C", "D"}
	r := buildSegmentedTable(t, "R", cols, nil, [][][]string{
		{{"a1", "b1", "c1", "d1"}, {"a1", "b2", "c2", "d2"}},
		{{"a1", "b1", "c1", "d3"}, {"a2", "b1", "c3", "d4"}},
		{{"a2", "b1", "c3", "d5"}},
	})
	spec := DecomposeSpec{
		OutS: "S", SColumns: []string{"A", "B", "C"},
		OutT: "T", TColumns: []string{"A", "B", "D"},
	}
	seg, err := Decompose(r, spec, Options{ValidateFD: true})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Decompose(r, spec, Options{ValidateFD: true, Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, seg.S, mono.S, "S")
	assertIdenticalRows(t, seg.T, mono.T, "T")
}

func TestDecomposeSegmentedLossyErrorParity(t *testing.T) {
	// Address does not determine Skill: both paths must reject the lossy
	// spec under ValidateFD, with segment boundaries not hiding the
	// cross-segment FD violation (Jones's address maps to two skills in
	// different segments).
	spec := DecomposeSpec{
		OutS: "S", SColumns: []string{"Address", "Skill"},
		OutT: "T", TColumns: []string{"Address", "Employee"},
	}
	_, segErr := Decompose(figure1Segmented(t), spec, Options{ValidateFD: true})
	_, monoErr := Decompose(figure1Segmented(t), spec, Options{ValidateFD: true, Rebuild: true})
	if segErr == nil || monoErr == nil {
		t.Fatalf("lossy decomposition accepted: segmented=%v rebuild=%v", segErr, monoErr)
	}
}

// segmentedDimFact builds a keyed multi-segment dimension table and a
// multi-segment fact table referencing it.
func segmentedDimFact(t *testing.T) (dim, fact *colstore.Table) {
	dim = buildSegmentedTable(t, "Emp", []string{"Employee", "Address"}, []string{"Employee"}, [][][]string{
		{{"Jones", "425 Grant Ave"}, {"Roberts", "747 Industrial Way"}},
		{{"Ellis", "747 Industrial Way"}},
		{{"Harrison", "425 Grant Ave"}},
	})
	fact = buildSegmentedTable(t, "Skills", []string{"Employee", "Skill"}, nil, [][][]string{
		{{"Jones", "Typing"}, {"Jones", "Shorthand"}},
		{{"Roberts", "Light Cleaning"}, {"Ellis", "Alchemy"}, {"Jones", "Whittling"}},
		{{"Ellis", "Juggling"}, {"Harrison", "Light Cleaning"}},
	})
	return dim, fact
}

func TestMergeKeyFKSegmentedMatchesRebuild(t *testing.T) {
	dim, fact := segmentedDimFact(t)
	seg, err := MergeKeyFK(fact, dim, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := MergeKeyFK(fact, dim, "R", Options{Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, seg.Table, mono.Table, "merged")
	if seg.Reused != mono.Reused {
		t.Fatalf("reused side differs: %q vs %q", seg.Reused, mono.Reused)
	}
	// The segment-wise merge maps each fact segment independently: the
	// output must keep the fact table's segmentation instead of being
	// rebuilt as one segment.
	if got, want := seg.Table.NumSegments(), fact.NumSegments(); got != want {
		t.Fatalf("merged output has %d segments, want %d (one per fact segment)", got, want)
	}
	if err := seg.Table.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeKeyFKSegmentedForeignKeyViolationParity(t *testing.T) {
	dim, _ := segmentedDimFact(t)
	// "Nobody" appears only in the fact's last segment — the violation
	// must surface on both paths even though earlier segments are clean.
	fact := buildSegmentedTable(t, "Skills", []string{"Employee", "Skill"}, nil, [][][]string{
		{{"Jones", "Typing"}, {"Ellis", "Alchemy"}},
		{{"Nobody", "Loafing"}},
	})
	_, segErr := MergeKeyFK(fact, dim, "R", Options{})
	_, monoErr := MergeKeyFK(fact, dim, "R", Options{Rebuild: true})
	if segErr == nil || monoErr == nil {
		t.Fatalf("foreign-key violation missed: segmented=%v rebuild=%v", segErr, monoErr)
	}
}

func TestMergeKeyFKSegmentedCompositeKey(t *testing.T) {
	dim := buildSegmentedTable(t, "D", []string{"A", "B", "X"}, []string{"A", "B"}, [][][]string{
		{{"a1", "b1", "x1"}, {"a1", "b2", "x2"}},
		{{"a2", "b1", "x3"}},
	})
	fact := buildSegmentedTable(t, "F", []string{"A", "B", "Y"}, nil, [][][]string{
		{{"a1", "b2", "y1"}, {"a1", "b1", "y2"}},
		{{"a2", "b1", "y3"}, {"a1", "b1", "y4"}},
	})
	seg, err := MergeKeyFK(fact, dim, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := MergeKeyFK(fact, dim, "R", Options{Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, seg.Table, mono.Table, "composite merged")
}

func TestMergeGeneralSegmentedMatchesRebuild(t *testing.T) {
	// Address is a key of neither side, so Merge must take the general
	// two-pass algorithm on both paths.
	s := buildSegmentedTable(t, "S", []string{"Employee", "Address"}, nil, [][][]string{
		{{"Jones", "425 Grant Ave"}, {"Roberts", "747 Industrial Way"}},
		{{"Ellis", "747 Industrial Way"}, {"Harrison", "425 Grant Ave"}},
	})
	tt := buildSegmentedTable(t, "T", []string{"Address", "Rent"}, nil, [][][]string{
		{{"425 Grant Ave", "1200"}},
		{{"747 Industrial Way", "800"}, {"425 Grant Ave", "1250"}},
	})
	seg, err := MergeGeneral(s, tt, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := MergeGeneral(s, tt, "R", Options{Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, seg, mono, "general merged")
}

func TestMergeGeneralSegmentedCompositeJoin(t *testing.T) {
	s := buildSegmentedTable(t, "S", []string{"A", "B", "X"}, nil, [][][]string{
		{{"a1", "b1", "x1"}, {"a1", "b1", "x2"}},
		{{"a2", "b2", "x3"}, {"a1", "b1", "x4"}},
	})
	tt := buildSegmentedTable(t, "T", []string{"A", "B", "Y"}, nil, [][][]string{
		{{"a1", "b1", "y1"}, {"a2", "b2", "y2"}},
		{{"a1", "b1", "y3"}},
	})
	seg, err := MergeGeneral(s, tt, "R", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := MergeGeneral(s, tt, "R", Options{Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, seg, mono, "composite general merged")
}

func TestUnionSegmentedAdoptsSegments(t *testing.T) {
	cols := []string{"K", "V"}
	a := buildSegmentedTable(t, "A", cols, nil, [][][]string{
		{{"k1", "v1"}, {"k2", "v2"}},
		{{"k3", "v1"}},
	})
	b := buildSegmentedTable(t, "B", cols, nil, [][][]string{
		{{"k4", "v3"}},
		{{"k5", "v1"}, {"k6", "v2"}},
		{{"k7", "v4"}},
	})
	seg, err := Union(a, b, "U", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Union(a, b, "U", Options{Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, seg, mono, "union")
	// The segment-wise union is pure metadata: both inputs' segments are
	// adopted unchanged.
	if got, want := seg.NumSegments(), a.NumSegments()+b.NumSegments(); got != want {
		t.Fatalf("union has %d segments, want %d (segment adoption)", got, want)
	}
	if err := seg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSegmentedStaysSegmented(t *testing.T) {
	r := buildSegmentedTable(t, "R", []string{"K", "G"}, nil, [][][]string{
		{{"k1", "g1"}, {"k2", "g2"}},
		{{"k3", "g1"}, {"k4", "g1"}},
		{{"k5", "g2"}},
	})
	yes, no, err := Partition(r, "G != 'g2'", "P1", "P2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	myes, mno, err := Partition(r, "G != 'g2'", "P1", "P2", Options{Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRows(t, yes, myes, "P1")
	assertIdenticalRows(t, no, mno, "P2")
	// Each input segment with surviving rows yields one output segment.
	if yes.NumSegments() != 2 || no.NumSegments() != 2 {
		t.Fatalf("partition outputs have %d/%d segments, want 2/2", yes.NumSegments(), no.NumSegments())
	}
}

// TestQuickSegmentedEvolutionParity randomizes tables, segment splits and
// decompose/merge round trips, checking the segment-wise path reproduces
// the monolithic path's exact outputs throughout.
func TestQuickSegmentedEvolutionParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 25; iter++ {
		nrows := 5 + rng.Intn(40)
		var rows [][]string
		for i := 0; i < nrows; i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(nrows)) // duplicates likely
			rows = append(rows, []string{k, "g" + k[1:], fmt.Sprintf("v%d", rng.Intn(5))})
		}
		// Random segment split of the same row sequence.
		var chunks [][][]string
		for start := 0; start < len(rows); {
			end := start + 1 + rng.Intn(8)
			if end > len(rows) {
				end = len(rows)
			}
			chunks = append(chunks, rows[start:end])
			start = end
		}
		cols := []string{"K", "G", "V"}
		r := buildSegmentedTable(t, "R", cols, nil, chunks)
		spec := DecomposeSpec{
			OutS: "A", SColumns: []string{"K", "G"},
			OutT: "B", TColumns: []string{"K", "V"},
		}
		seg, segErr := Decompose(r, spec, Options{})
		mono, monoErr := Decompose(r, spec, Options{Rebuild: true})
		if (segErr == nil) != (monoErr == nil) {
			t.Fatalf("iter %d: decompose error parity: %v vs %v", iter, segErr, monoErr)
		}
		if segErr != nil {
			continue
		}
		assertIdenticalRows(t, seg.S, mono.S, fmt.Sprintf("iter %d: A", iter))
		assertIdenticalRows(t, seg.T, mono.T, fmt.Sprintf("iter %d: B", iter))
		segM, segErr := Merge(seg.S, seg.T, "R2", Options{})
		monoM, monoErr := Merge(mono.S, mono.T, "R2", Options{Rebuild: true})
		if (segErr == nil) != (monoErr == nil) {
			t.Fatalf("iter %d: merge error parity: %v vs %v", iter, segErr, monoErr)
		}
		if segErr != nil {
			continue
		}
		assertIdenticalRows(t, segM.Table, monoM.Table, fmt.Sprintf("iter %d: merged", iter))
		if err := segM.Table.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

// Package plan is a small cost-based planner for multi-table queries
// over the bitmap-indexed column store. It rewrites a declarative query
// into a colquery operator tree: WHERE conjuncts that mention one
// table's columns are pushed down into that table's scan as per-value
// predicate bitmaps, joins are reordered greedily by estimated
// cardinality (dictionary distinct counts over segment row counts — the
// statistics colstore.Column.Stats exposes), join keys shared between a
// fact scan and a dimension are pre-reduced by a WAH semi-join that
// never decodes a row, and the resulting plan shape is memoized in an
// LRU cache keyed on the normalized query (literals stripped), so a
// repeated query shape skips pushdown analysis and join ordering.
// Single-table queries delegate to colquery.Run unchanged.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"cods/internal/colquery"
	"cods/internal/colstore"
	"cods/internal/expr"
	"cods/internal/wah"
)

// Join names one inner-join step: the table to join and the shared
// column names to match on (USING-style — each On column must exist on
// both sides and appears once in the output).
type Join struct {
	Table string
	On    []string
}

// Query is a multi-table query. With no Joins it is exactly a
// colquery.Query against From; with Joins, Select/Where/GroupBy/OrderBy
// refer to the joined output's columns (each name must be unambiguous —
// On columns merge, any other shared name is an error).
type Query struct {
	// Select lists projected columns; empty selects all columns of the
	// joined output in written order (From's schema, then each join's
	// non-key columns). Ignored when Aggregates is non-empty.
	Select []string
	// Aggregates computes aggregate columns (with or without GroupBy).
	Aggregates []colquery.Agg
	// From is the probe-side root table.
	From string
	// Joins are applied to From's output in the planner's chosen order;
	// the written order defines the output schema.
	Joins []Join
	// Where is an optional predicate (package expr syntax) over the
	// joined columns. Single-table conjuncts are pushed into scans.
	Where string
	// GroupBy optionally groups by one output column; requires Aggregates.
	GroupBy string
	// OrderBy optionally sorts by one output column.
	OrderBy string
	// Desc reverses the order.
	Desc bool
	// Limit caps the number of output rows; 0 means no limit.
	Limit int
	// Parallelism bounds per-distinct-value fan-out; 0 means GOMAXPROCS.
	Parallelism int
	// DisableSemiJoin turns off the WAH semi-join reduction of the From
	// scan (used by benchmarks to isolate the generic hash path).
	DisableSemiJoin bool
	// Epoch tags cached plan shapes; callers pass a catalog version so
	// an evolution invalidates cached join orders. A stale hit is never
	// incorrect — only the cost estimates behind the join order age.
	Epoch string
}

// Resolver maps a table name to its immutable snapshot. Errors pass
// through untouched, so a catalog resolver's not-found sentinel reaches
// the caller (the HTTP layer classifies it as 404).
type Resolver func(name string) (*colstore.Table, error)

// Run plans and executes q. cache may be nil (plans are then derived
// from scratch each time).
func Run(resolve Resolver, q Query, cache *Cache) (*colquery.ResultSet, error) {
	if len(q.Joins) == 0 {
		t, err := resolve(q.From)
		if err != nil {
			return nil, err
		}
		return colquery.Run(t, colquery.Query{
			Select: q.Select, Where: q.Where, GroupBy: q.GroupBy,
			Aggregates: q.Aggregates, OrderBy: q.OrderBy, Desc: q.Desc,
			Limit: q.Limit, Parallelism: q.Parallelism,
		})
	}
	tables := make([]*colstore.Table, 1+len(q.Joins))
	var err error
	if tables[0], err = resolve(q.From); err != nil {
		return nil, err
	}
	for i, j := range q.Joins {
		if tables[i+1], err = resolve(j.Table); err != nil {
			return nil, err
		}
	}
	conjuncts, err := splitWhere(q.Where)
	if err != nil {
		return nil, err
	}
	sp := cache.lookup(shapeKey(q), func() *spec {
		return makeSpec(q, tables, conjuncts)
	})
	root, err := assemble(q, tables, conjuncts, sp)
	if err != nil {
		return nil, err
	}
	rs, err := colquery.Collect(root)
	if err != nil {
		return nil, err
	}
	if len(q.Aggregates) == 0 && rs.Rows == nil {
		rs.Rows = [][]string{}
	}
	return rs, nil
}

// residual marks a conjunct that spans tables and must run as a
// row-wise filter above the joins.
const residual = -1

// spec is the cached plan shape: where each WHERE conjunct lands and
// the order joins execute in. It depends only on the query's shape and
// the tables' statistics, never on literal values, which is what makes
// it cacheable under a literal-stripped key.
type spec struct {
	// pushed[i] is the table slot (0 = From, j+1 = Joins[j]) whose scan
	// absorbs conjunct i, or residual.
	pushed []int
	// order is the execution order of joins as indices into Joins.
	order []int
}

func makeSpec(q Query, tables []*colstore.Table, conjuncts []expr.Node) *spec {
	sp := &spec{pushed: make([]int, len(conjuncts))}
	for i, c := range conjuncts {
		// A residual conjunct's columns are checked by assemble's
		// RowFilter against the joined output; nothing to verify here.
		sp.pushed[i] = pushTarget(c, tables)
	}
	// Greedy join order: grow the joined column set from From outward,
	// always taking the joinable (On columns already available) join
	// with the smallest estimated post-pushdown cardinality. Ties and
	// estimates are deterministic, so the order is too.
	avail := make(map[string]bool)
	for _, c := range tables[0].ColumnNames() {
		avail[c] = true
	}
	est := make([]float64, len(q.Joins))
	for j := range q.Joins {
		est[j] = estimateRows(tables[j+1], j+1, sp.pushed, conjuncts)
	}
	remaining := make([]int, len(q.Joins))
	for j := range remaining {
		remaining[j] = j
	}
	for len(remaining) > 0 {
		pick := -1
		for _, j := range remaining {
			joinable := true
			for _, c := range q.Joins[j].On {
				if !avail[c] {
					joinable = false
					break
				}
			}
			if !joinable {
				continue
			}
			if pick == -1 || est[j] < est[pick] {
				pick = j
			}
		}
		if pick == -1 {
			// No join's keys are reachable yet: fall back to written
			// order for the rest and let HashJoin report the missing
			// ON column.
			sort.Ints(remaining)
			sp.order = append(sp.order, remaining...)
			break
		}
		sp.order = append(sp.order, pick)
		for _, c := range tables[pick+1].ColumnNames() {
			avail[c] = true
		}
		for i, j := range remaining {
			if j == pick {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	return sp
}

// pushTarget returns the first table slot whose schema covers every
// column of the conjunct, or residual. Written order (From first) makes
// the choice deterministic when On columns exist on both sides — both
// scans see identical values for them, so either choice is correct and
// the earlier, usually larger, side benefits more from the bitmap.
func pushTarget(c expr.Node, tables []*colstore.Table) int {
	cols := c.Columns(nil)
	for slot, t := range tables {
		all := true
		for _, col := range cols {
			if !t.HasColumn(col) {
				all = false
				break
			}
		}
		if all {
			return slot
		}
	}
	return residual
}

// estimateRows is the planner's cardinality model for one table after
// pushdown: row count scaled by 1/distinct for each equality conjunct
// (uniformity assumption over the dictionary) and by 1/3 for any other
// pushed conjunct, floored at one row.
func estimateRows(t *colstore.Table, slot int, pushed []int, conjuncts []expr.Node) float64 {
	est := float64(t.NumRows())
	for i, target := range pushed {
		if target != slot {
			continue
		}
		if cmp, ok := conjuncts[i].(*expr.Comparison); ok && cmp.Op == expr.OpEq {
			if col, err := t.Column(cmp.Column); err == nil && col.DistinctCount() > 0 {
				est /= float64(col.DistinctCount())
				continue
			}
		}
		est /= 3
	}
	if est < 1 {
		return 1
	}
	return est
}

// assemble builds the operator tree for a planned join query.
func assemble(q Query, tables []*colstore.Table, conjuncts []expr.Node, sp *spec) (colquery.Operator, error) {
	masks := make([]*wah.Bitmap, len(tables))
	for slot, t := range tables {
		node := andAll(conjuncts, sp.pushed, slot)
		if node == nil {
			continue
		}
		m, err := node.EvalP(t, q.Parallelism)
		if err != nil {
			return nil, err
		}
		masks[slot] = m
	}
	// Semi-join reduction: for every join key that is also a From
	// column, intersect From's scan mask with the bitmap of From rows
	// whose key value survives on the dimension side. When the two
	// columns share dictionary lineage (DECOMPOSE outputs do) this is
	// pure WAH work — no row is decoded.
	if !q.DisableSemiJoin {
		for ji, j := range q.Joins {
			dim := tables[ji+1]
			for _, on := range j.On {
				if !tables[0].HasColumn(on) || !dim.HasColumn(on) {
					continue
				}
				factCol, err := tables[0].Column(on)
				if err != nil {
					return nil, err
				}
				dimCol, err := dim.Column(on)
				if err != nil {
					return nil, err
				}
				sj := colquery.SemiJoinMask(factCol, dimCol, masks[ji+1], q.Parallelism)
				if masks[0] == nil {
					masks[0] = sj
				} else {
					masks[0] = wah.And(masks[0], sj)
				}
			}
		}
	}
	needed, starOrder, err := neededColumns(q, tables)
	if err != nil {
		return nil, err
	}
	provided := make(map[string]bool)
	scanCols := func(t *colstore.Table, on []string) []string {
		var cols []string
		onSet := make(map[string]bool, len(on))
		for _, c := range on {
			onSet[c] = true
			cols = append(cols, c)
		}
		for _, c := range t.ColumnNames() {
			if needed[c] && !provided[c] && !onSet[c] {
				cols = append(cols, c)
			}
		}
		for _, c := range cols {
			provided[c] = true
		}
		return cols
	}
	var root colquery.Operator
	root, err = colquery.NewTableScan(tables[0], scanCols(tables[0], nil), masks[0], q.Parallelism)
	if err != nil {
		return nil, err
	}
	for _, j := range sp.order {
		build, err := colquery.NewTableScan(tables[j+1], scanCols(tables[j+1], q.Joins[j].On), masks[j+1], q.Parallelism)
		if err != nil {
			return nil, err
		}
		if root, err = colquery.NewHashJoin(root, build, q.Joins[j].On); err != nil {
			return nil, err
		}
	}
	if node := andAll(conjuncts, sp.pushed, residual); node != nil {
		if root, err = colquery.NewRowFilter(root, node); err != nil {
			return nil, err
		}
	}
	switch {
	case len(q.Aggregates) > 0:
		if root, err = colquery.NewGroupAgg(root, q.GroupBy, q.Aggregates); err != nil {
			return nil, err
		}
	case q.GroupBy != "":
		return nil, fmt.Errorf("colquery: GROUP BY requires aggregates")
	default:
		// Restore the declared output order: join reordering and
		// key-first scans leave the stream in execution order.
		want := q.Select
		if len(want) == 0 {
			want = starOrder
		}
		if root, err = colquery.NewProject(root, want); err != nil {
			return nil, err
		}
	}
	if q.OrderBy != "" || q.Limit > 0 {
		if root, err = colquery.NewOrderLimit(root, q.OrderBy, q.Desc, q.Limit); err != nil {
			return nil, err
		}
	}
	return root, nil
}

// neededColumns computes the set of columns any operator consumes, and
// the written-order star schema (From's columns, then each join's
// non-key, not-yet-seen columns) used when Select is empty.
func neededColumns(q Query, tables []*colstore.Table) (map[string]bool, []string, error) {
	var star []string
	seen := make(map[string]bool)
	for _, c := range tables[0].ColumnNames() {
		if !seen[c] {
			star = append(star, c)
			seen[c] = true
		}
	}
	for j := range q.Joins {
		for _, c := range tables[j+1].ColumnNames() {
			if !seen[c] {
				star = append(star, c)
				seen[c] = true
			}
		}
	}
	needed := make(map[string]bool)
	add := func(cols ...string) {
		for _, c := range cols {
			needed[c] = true
		}
	}
	switch {
	case len(q.Aggregates) > 0:
		for _, a := range q.Aggregates {
			if a.Func != colquery.Count {
				add(a.Column)
			}
		}
		if q.GroupBy != "" {
			add(q.GroupBy)
		}
	case len(q.Select) > 0:
		add(q.Select...)
	default:
		add(star...)
	}
	if q.OrderBy != "" && len(q.Aggregates) == 0 {
		add(q.OrderBy)
	}
	if q.Where != "" {
		pred, err := expr.Parse(q.Where)
		if err != nil {
			return nil, nil, err
		}
		add(pred.Columns(nil)...)
	}
	for _, j := range q.Joins {
		add(j.On...)
	}
	return needed, star, nil
}

// splitWhere parses the predicate and splits its top-level AND chain
// into independently pushable conjuncts.
func splitWhere(where string) ([]expr.Node, error) {
	if where == "" {
		return nil, nil
	}
	pred, err := expr.Parse(where)
	if err != nil {
		return nil, err
	}
	var out []expr.Node
	var walk func(n expr.Node)
	walk = func(n expr.Node) {
		if l, ok := n.(*expr.Logical); ok && l.IsAnd {
			walk(l.L)
			walk(l.R)
			return
		}
		out = append(out, n)
	}
	walk(pred)
	return out, nil
}

// andAll re-joins the conjuncts assigned to one slot into a single
// predicate node, or nil if none are.
func andAll(conjuncts []expr.Node, pushed []int, slot int) expr.Node {
	var node expr.Node
	for i, target := range pushed {
		if target != slot {
			continue
		}
		if node == nil {
			node = conjuncts[i]
		} else {
			node = &expr.Logical{IsAnd: true, L: node, R: conjuncts[i]}
		}
	}
	return node
}

// shapeKey normalizes a query to its cacheable shape: tables, joins,
// output clauses, and the WHERE tree with literals replaced by '?'.
func shapeKey(q Query) string {
	var sb strings.Builder
	sb.WriteString(q.Epoch)
	sb.WriteString("|f:")
	sb.WriteString(q.From)
	for _, j := range q.Joins {
		fmt.Fprintf(&sb, "|j:%s(%s)", j.Table, strings.Join(j.On, ","))
	}
	fmt.Fprintf(&sb, "|s:%s|g:%s", strings.Join(q.Select, ","), q.GroupBy)
	for _, a := range q.Aggregates {
		fmt.Fprintf(&sb, "|a:%s:%s", a.Func, a.Column)
	}
	sb.WriteString("|w:")
	if q.Where != "" {
		if pred, err := expr.Parse(q.Where); err == nil {
			writeShape(&sb, pred)
		} else {
			sb.WriteString(q.Where)
		}
	}
	return sb.String()
}

func writeShape(sb *strings.Builder, n expr.Node) {
	switch v := n.(type) {
	case *expr.Comparison:
		fmt.Fprintf(sb, "%s%s?", v.Column, v.Op)
	case *expr.Logical:
		op := "|"
		if v.IsAnd {
			op = "&"
		}
		sb.WriteString("(")
		writeShape(sb, v.L)
		sb.WriteString(op)
		writeShape(sb, v.R)
		sb.WriteString(")")
	case *expr.Not:
		sb.WriteString("!(")
		writeShape(sb, v.X)
		sb.WriteString(")")
	default:
		sb.WriteString(n.String())
	}
}

package plan

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cods/internal/colquery"
	"cods/internal/colstore"
	"cods/internal/expr"
)

func mkTable(t *testing.T, name string, cols []string, rows [][]string) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder(name, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func resolver(tables ...*colstore.Table) Resolver {
	byName := make(map[string]*colstore.Table, len(tables))
	for _, t := range tables {
		byName[t.Name()] = t
	}
	return func(name string) (*colstore.Table, error) {
		t, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("no table %q", name)
		}
		return t, nil
	}
}

// starJoinFixture is a small fact table with two dimensions of very
// different sizes, for pinning join order and semi-join behavior.
func starJoinFixture(t *testing.T) Resolver {
	t.Helper()
	var factRows, bigRows [][]string
	for i := 0; i < 40; i++ {
		factRows = append(factRows, []string{
			fmt.Sprintf("b%d", i%20), fmt.Sprintf("s%d", i%2), fmt.Sprintf("%d", i),
		})
	}
	for i := 0; i < 20; i++ {
		bigRows = append(bigRows, []string{fmt.Sprintf("b%d", i), fmt.Sprintf("big%d", i)})
	}
	fact := mkTable(t, "fact", []string{"BK", "SK", "V"}, factRows)
	big := mkTable(t, "big", []string{"BK", "BigV"}, bigRows)
	small := mkTable(t, "small", []string{"SK", "SmallV"},
		[][]string{{"s0", "even"}, {"s1", "odd"}})
	return resolver(fact, big, small)
}

func TestSingleTableDelegates(t *testing.T) {
	tab := mkTable(t, "t", []string{"A", "B"},
		[][]string{{"x", "1"}, {"y", "2"}, {"x", "3"}})
	want, err := colquery.Run(tab, colquery.Query{Select: []string{"B"}, Where: "A = 'x'"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(resolver(tab), Query{From: "t", Select: []string{"B"}, Where: "A = 'x'"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestJoinStarSchema(t *testing.T) {
	fact := mkTable(t, "fact", []string{"K", "F"},
		[][]string{{"a", "f1"}, {"b", "f2"}, {"a", "f3"}})
	dim := mkTable(t, "dim", []string{"K", "D"},
		[][]string{{"a", "d-a"}, {"b", "d-b"}, {"c", "d-c"}})
	rs, err := Run(resolver(fact, dim), Query{
		From: "fact", Joins: []Join{{Table: "dim", On: []string{"K"}}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Columns, []string{"K", "F", "D"}) {
		t.Fatalf("columns = %v", rs.Columns)
	}
	want := [][]string{{"a", "f1", "d-a"}, {"b", "f2", "d-b"}, {"a", "f3", "d-a"}}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows = %v, want %v", rs.Rows, want)
	}
}

func TestPushdownTargets(t *testing.T) {
	fact := mkTable(t, "fact", []string{"K", "F"}, [][]string{{"a", "1"}})
	dim := mkTable(t, "dim", []string{"K", "D"}, [][]string{{"a", "2"}})
	q := Query{
		From:  "fact",
		Joins: []Join{{Table: "dim", On: []string{"K"}}},
		Where: "F = '1' AND D = '2' AND (F = 'x' OR D = 'y')",
	}
	conjuncts, err := splitWhere(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	sp := makeSpec(q, []*colstore.Table{fact, dim}, conjuncts)
	// F is fact-only, D is dim-only, the OR spans both → residual. The
	// shared key K would resolve to slot 0 (written order, From first).
	if want := []int{0, 1, residual}; !reflect.DeepEqual(sp.pushed, want) {
		t.Fatalf("pushed = %v, want %v", sp.pushed, want)
	}
	if kt := pushTarget(&expr.Comparison{Column: "K", Op: expr.OpEq, Literal: "a"},
		[]*colstore.Table{fact, dim}); kt != 0 {
		t.Fatalf("shared key pushed to slot %d, want 0", kt)
	}
}

func TestJoinReorderBySize(t *testing.T) {
	res := starJoinFixture(t)
	fact, _ := res("fact")
	big, _ := res("big")
	small, _ := res("small")
	q := Query{From: "fact", Joins: []Join{
		{Table: "big", On: []string{"BK"}},
		{Table: "small", On: []string{"SK"}},
	}}
	sp := makeSpec(q, []*colstore.Table{fact, big, small}, nil)
	// Both joins are reachable from the fact schema; the 2-row dimension
	// beats the 20-row one regardless of written order.
	if want := []int{1, 0}; !reflect.DeepEqual(sp.order, want) {
		t.Fatalf("order = %v, want %v", sp.order, want)
	}

	// A pushed equality on the big dimension shrinks its estimate to
	// ~1 row, flipping the greedy choice.
	q.Where = "BigV = 'big3'"
	conjuncts, err := splitWhere(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	sp = makeSpec(q, []*colstore.Table{fact, big, small}, conjuncts)
	if want := []int{0, 1}; !reflect.DeepEqual(sp.order, want) {
		t.Fatalf("order with pushdown = %v, want %v", sp.order, want)
	}
}

func TestJoinReorderChain(t *testing.T) {
	a := mkTable(t, "a", []string{"K1", "A"}, [][]string{{"k", "1"}})
	b := mkTable(t, "b", []string{"K1", "K2"}, [][]string{{"k", "m"}})
	c := mkTable(t, "c", []string{"K2", "C"}, [][]string{{"m", "2"}})
	// Written order lists c first, but its key K2 only becomes available
	// after b joins — the planner must sequence b before c.
	q := Query{From: "a", Joins: []Join{
		{Table: "c", On: []string{"K2"}},
		{Table: "b", On: []string{"K1"}},
	}}
	sp := makeSpec(q, []*colstore.Table{a, c, b}, nil)
	if want := []int{1, 0}; !reflect.DeepEqual(sp.order, want) {
		t.Fatalf("order = %v, want %v", sp.order, want)
	}
	// And the full run produces the chain's single row with the written
	// star schema (a, then c's columns, then b's).
	rs, err := Run(resolver(a, b, c), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Columns, []string{"K1", "A", "K2", "C"}) {
		t.Fatalf("columns = %v", rs.Columns)
	}
	if want := [][]string{{"k", "1", "m", "2"}}; !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows = %v, want %v", rs.Rows, want)
	}
}

func TestEstimateRows(t *testing.T) {
	tab := mkTable(t, "t", []string{"K", "V"}, [][]string{
		{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"},
		{"a", "5"}, {"b", "6"}, {"c", "7"}, {"d", "8"},
	})
	eq := &expr.Comparison{Column: "K", Op: expr.OpEq, Literal: "a"}
	ne := &expr.Comparison{Column: "V", Op: expr.OpNe, Literal: "1"}
	// 8 rows / 4 distinct K = 2 for the equality; /3 again for the rest.
	if got := estimateRows(tab, 0, []int{0}, []expr.Node{eq}); got != 2 {
		t.Fatalf("estimate = %v, want 2", got)
	}
	if got := estimateRows(tab, 0, []int{0, 0}, []expr.Node{eq, ne}); got != 2.0/3 && got != 1 {
		// 2/3 floors at 1.
		t.Fatalf("estimate = %v, want 1", got)
	}
	if got := estimateRows(tab, 0, []int{0, 0}, []expr.Node{eq, ne}); got != 1 {
		t.Fatalf("estimate = %v, want floored 1", got)
	}
	// Conjuncts pushed elsewhere do not shrink this table.
	if got := estimateRows(tab, 0, []int{1}, []expr.Node{eq}); got != 8 {
		t.Fatalf("estimate = %v, want 8", got)
	}
}

func TestSemiJoinOnOffParity(t *testing.T) {
	res := starJoinFixture(t)
	base := Query{
		From: "fact",
		Joins: []Join{
			{Table: "big", On: []string{"BK"}},
			{Table: "small", On: []string{"SK"}},
		},
		Where:   "SmallV = 'odd'",
		OrderBy: "V",
	}
	on, err := Run(res, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	off := base
	off.DisableSemiJoin = true
	offRS, err := Run(res, off, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(on, offRS) {
		t.Fatalf("semi-join on: %+v\nsemi-join off: %+v", on, offRS)
	}
	if len(on.Rows) != 20 {
		t.Fatalf("got %d rows, want the 20 odd fact rows", len(on.Rows))
	}
}

func TestResidualFilter(t *testing.T) {
	fact := mkTable(t, "fact", []string{"K", "F"},
		[][]string{{"a", "1"}, {"b", "2"}})
	dim := mkTable(t, "dim", []string{"K", "D"},
		[][]string{{"a", "1"}, {"b", "9"}})
	rs, err := Run(resolver(fact, dim), Query{
		From:  "fact",
		Joins: []Join{{Table: "dim", On: []string{"K"}}},
		// The OR spans both tables: no single scan can absorb it, so it
		// must run as a row-wise filter above the join.
		Where: "F = '1' OR D = 'nope'",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"a", "1", "1"}}; !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows = %v, want %v", rs.Rows, want)
	}
}

func TestSelectOrderRestored(t *testing.T) {
	fact := mkTable(t, "fact", []string{"K", "F"}, [][]string{{"a", "f"}})
	dim := mkTable(t, "dim", []string{"K", "D"}, [][]string{{"a", "d"}})
	rs, err := Run(resolver(fact, dim), Query{
		From:   "fact",
		Joins:  []Join{{Table: "dim", On: []string{"K"}}},
		Select: []string{"D", "F", "K"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Columns, []string{"D", "F", "K"}) {
		t.Fatalf("columns = %v", rs.Columns)
	}
	if want := [][]string{{"d", "f", "a"}}; !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows = %v, want %v", rs.Rows, want)
	}
}

func TestJoinedAggregates(t *testing.T) {
	res := starJoinFixture(t)
	rs, err := Run(res, Query{
		From: "fact",
		Joins: []Join{
			{Table: "small", On: []string{"SK"}},
		},
		Aggregates: []colquery.Agg{{Func: colquery.Count}, {Func: colquery.Sum, Column: "V"}},
		GroupBy:    "SmallV",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Columns, []string{"SmallV", "count(*)", "sum(V)"}) {
		t.Fatalf("columns = %v", rs.Columns)
	}
	// Even V (0+2+...+38 = 380) under "even", odd (1+3+...+39 = 400)
	// under "odd"; groups appear in first-appearance order of the joined
	// stream, which follows fact row order: V=0 is even first.
	want := [][]string{{"even", "20", "380"}, {"odd", "20", "400"}}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows = %v, want %v", rs.Rows, want)
	}
}

func TestResolverErrorPassesThrough(t *testing.T) {
	fact := mkTable(t, "fact", []string{"K"}, [][]string{{"a"}})
	sentinel := fmt.Errorf("boom")
	res := func(name string) (*colstore.Table, error) {
		if name == "fact" {
			return fact, nil
		}
		return nil, sentinel
	}
	_, err := Run(res, Query{From: "fact", Joins: []Join{{Table: "gone", On: []string{"K"}}}}, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the resolver's sentinel", err)
	}
	_, err = Run(res, Query{From: "gone"}, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("single-table err = %v, want the resolver's sentinel", err)
	}
}

func TestShapeKeyNormalizesLiterals(t *testing.T) {
	base := Query{
		From:  "fact",
		Joins: []Join{{Table: "dim", On: []string{"K"}}},
		Where: "F = 'x' AND D != 'y'",
		Epoch: "7",
	}
	other := base
	other.Where = "F = 'zzz' AND D != 'w'"
	if shapeKey(base) != shapeKey(other) {
		t.Fatalf("literal change altered the key:\n%s\n%s", shapeKey(base), shapeKey(other))
	}
	shape := base
	shape.Where = "F = 'x' OR D != 'y'"
	if shapeKey(base) == shapeKey(shape) {
		t.Fatal("AND vs OR produced the same key")
	}
	epoch := base
	epoch.Epoch = "8"
	if shapeKey(base) == shapeKey(epoch) {
		t.Fatal("epoch change did not alter the key")
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	calls := 0
	fill := func() *spec { calls++; return &spec{} }
	a := c.lookup("a", fill)
	if c.lookup("a", fill) != a {
		t.Fatal("second lookup missed")
	}
	c.lookup("b", fill)
	c.lookup("a", fill) // refresh a: b is now least recent
	c.lookup("c", fill) // evicts b
	if hits, misses, entries := c.Stats(); hits != 2 || misses != 3 || entries != 2 {
		t.Fatalf("stats = %d hits, %d misses, %d entries; want 2, 3, 2", hits, misses, entries)
	}
	c.lookup("b", fill) // must refill: b was evicted (and a falls out now)
	if calls != 4 {
		t.Fatalf("fill ran %d times, want 4 (a, b, c, b-again)", calls)
	}
	c.lookup("c", fill) // still resident
	if calls != 4 {
		t.Fatalf("fill ran %d times after c re-lookup, want still 4", calls)
	}
}

func TestCacheNilReceiver(t *testing.T) {
	var c *Cache
	sp := c.lookup("k", func() *spec { return &spec{order: []int{1}} })
	if sp == nil || len(sp.order) != 1 {
		t.Fatalf("nil cache lookup = %+v", sp)
	}
}

func TestRunUsesCache(t *testing.T) {
	res := starJoinFixture(t)
	c := NewCache(0)
	q := Query{
		From:  "fact",
		Joins: []Join{{Table: "small", On: []string{"SK"}}},
		Where: "SmallV = 'odd'",
		Epoch: "1",
	}
	first, err := Run(res, q, c)
	if err != nil {
		t.Fatal(err)
	}
	q.Where = "SmallV = 'even'" // same shape, different literal
	second, err := Run(res, q, c)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1 hit, 1 miss", hits, misses)
	}
	if len(first.Rows)+len(second.Rows) != 40 {
		t.Fatalf("odd+even rows = %d+%d, want all 40", len(first.Rows), len(second.Rows))
	}
	// A new epoch (schema evolution) must miss.
	q.Epoch = "2"
	if _, err := Run(res, q, c); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("after epoch bump: %d hits, %d misses; want 1, 2", hits, misses)
	}
}

func TestGroupByWithoutAggregates(t *testing.T) {
	fact := mkTable(t, "fact", []string{"K"}, [][]string{{"a"}})
	dim := mkTable(t, "dim", []string{"K", "D"}, [][]string{{"a", "d"}})
	_, err := Run(resolver(fact, dim), Query{
		From: "fact", Joins: []Join{{Table: "dim", On: []string{"K"}}}, GroupBy: "D",
	}, nil)
	if err == nil {
		t.Fatal("GROUP BY without aggregates accepted")
	}
}

func TestEmptyJoinResultIsNonNil(t *testing.T) {
	fact := mkTable(t, "fact", []string{"K"}, [][]string{{"a"}})
	dim := mkTable(t, "dim", []string{"K", "D"}, [][]string{{"z", "d"}})
	rs, err := Run(resolver(fact, dim), Query{
		From: "fact", Joins: []Join{{Table: "dim", On: []string{"K"}}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows == nil || len(rs.Rows) != 0 {
		t.Fatalf("rows = %#v, want empty non-nil", rs.Rows)
	}
}

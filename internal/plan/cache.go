package plan

import (
	"container/list"
	"sync"
)

// DefaultCacheCapacity bounds a Cache built with NewCache(0). Plan
// shapes are tiny (two small int slices), so the cap exists to bound
// key churn from generated queries, not memory pressure.
const DefaultCacheCapacity = 128

// Cache memoizes plan shapes under normalized query keys with LRU
// eviction. A nil *Cache is valid and caches nothing, so callers can
// thread an optional cache without branching. Safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	idx    map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	sp  *spec
}

// NewCache returns a cache holding at most capacity plan shapes
// (DefaultCacheCapacity if capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{cap: capacity, ll: list.New(), idx: make(map[string]*list.Element)}
}

// lookup returns the cached shape for key, filling it via fill on a
// miss. The fill runs outside the lock-free fast path but inside the
// mutex, which is fine: planning is pure in-memory analysis, and
// serializing it deduplicates concurrent fills of the same key.
func (c *Cache) lookup(key string, fill func() *spec) *spec {
	if c == nil {
		return fill()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).sp
	}
	c.misses++
	sp := fill()
	el := c.ll.PushFront(&cacheEntry{key: key, sp: sp})
	c.idx[key] = el
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.idx, old.Value.(*cacheEntry).key)
	}
	return sp
}

// Stats reports cumulative hits and misses and the current entry count.
func (c *Cache) Stats() (hits, misses uint64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

package queryevolve

import (
	"reflect"
	"testing"

	"cods/internal/evolve"
	"cods/internal/workload"
)

func TestDecomposeMatchesDataLevel(t *testing.T) {
	r, err := workload.BuildColstore(workload.Spec{Rows: 3000, DistinctKeys: 50, Seed: 1}, "R")
	if err != nil {
		t.Fatal(err)
	}
	qS, qT, err := Decompose(r, "S", []string{"A", "B"}, "T", []string{"A", "C"})
	if err != nil {
		t.Fatal(err)
	}
	dRes, err := evolve.Decompose(r, evolve.DecomposeSpec{
		OutS: "S", SColumns: []string{"A", "B"},
		OutT: "T", TColumns: []string{"A", "C"},
	}, evolve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qS.TupleMultiset(), dRes.S.TupleMultiset()) {
		t.Fatal("S differs between query-level and data-level evolution")
	}
	if !reflect.DeepEqual(qT.TupleMultiset(), dRes.T.TupleMultiset()) {
		t.Fatal("T differs between query-level and data-level evolution")
	}
	if err := qS.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := qT.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMatchesDataLevel(t *testing.T) {
	s, tt, err := workload.BuildColstoreST(workload.Spec{Rows: 2500, DistinctKeys: 40, Seed: 2}, "S", "T")
	if err != nil {
		t.Fatal(err)
	}
	qR, err := Merge(s, tt, "R")
	if err != nil {
		t.Fatal(err)
	}
	dRes, err := evolve.MergeKeyFK(s, tt, "R", evolve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qR.TupleMultiset(), dRes.Table.TupleMultiset()) {
		t.Fatal("merge differs between query-level and data-level evolution")
	}
	if err := qR.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeNoCommonColumns(t *testing.T) {
	a, err := workload.BuildColstore(workload.Spec{Rows: 10, DistinctKeys: 2, Seed: 3}, "A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Project("B", []string{"B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.WithColumnRenamed("B", "Z")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a.WithName("A2"), c, "out"); err == nil {
		t.Fatal("expected error for disjoint schemas")
	}
}

func TestDecomposeUnknownColumn(t *testing.T) {
	r, err := workload.BuildColstore(workload.Spec{Rows: 10, DistinctKeys: 2, Seed: 4}, "R")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompose(r, "S", []string{"A", "Nope"}, "T", []string{"A", "C"}); err == nil {
		t.Fatal("expected unknown column error")
	}
}

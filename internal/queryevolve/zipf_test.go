package queryevolve

import (
	"reflect"
	"testing"

	"cods/internal/evolve"
	"cods/internal/workload"
)

// TestEquivalenceUnderSkew repeats the data-level vs query-level
// equivalence with a Zipf-skewed key distribution, where a few keys own
// most rows — the shape that stresses fill-run handling in the compressed
// algorithms.
func TestEquivalenceUnderSkew(t *testing.T) {
	r, err := workload.BuildColstore(workload.Spec{Rows: 4000, DistinctKeys: 60, ZipfS: 1.4, Seed: 13}, "R")
	if err != nil {
		t.Fatal(err)
	}
	qS, qT, err := Decompose(r, "S", []string{"A", "B"}, "T", []string{"A", "C"})
	if err != nil {
		t.Fatal(err)
	}
	dRes, err := evolve.Decompose(r, evolve.DecomposeSpec{
		OutS: "S", SColumns: []string{"A", "B"},
		OutT: "T", TColumns: []string{"A", "C"},
	}, evolve.Options{ValidateFD: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qS.TupleMultiset(), dRes.S.TupleMultiset()) {
		t.Fatal("skewed S differs between paths")
	}
	if !reflect.DeepEqual(qT.TupleMultiset(), dRes.T.TupleMultiset()) {
		t.Fatal("skewed T differs between paths")
	}
	// Round trip on the skewed data.
	merged, err := evolve.MergeKeyFK(dRes.S, dRes.T, "R2", evolve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Table.TupleMultiset(), r.TupleMultiset()) {
		t.Fatal("skewed round trip lost tuples")
	}
}

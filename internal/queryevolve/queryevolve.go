// Package queryevolve implements query-level data evolution on the column
// store — the right-hand path of the paper's Figure 2 and the behavioral
// stand-in for the MonetDB baseline ("M" in Figure 3). Unlike package
// evolve, which operates directly on compressed bitmaps, this package does
// what a column-oriented query engine must do to execute
// "INSERT INTO new SELECT ... FROM old":
//
//  1. decompress the input columns into row-wise values,
//  2. materialize the query result as tuples (projection, distinct, join),
//  3. split the result back into columns, and
//  4. re-compress each output column into a fresh bitmap index.
//
// The contrast between this package and package evolve on identical inputs
// is the paper's core claim.
package queryevolve

import (
	"fmt"
	"strings"

	"cods/internal/colstore"
)

// materialize decompresses the named columns into row-wise value arrays
// (step 1 of the query-level path). Value strings are shared with the
// dictionaries, as a column engine's value heap would be.
func materialize(t *colstore.Table, columns []string) ([][]string, error) {
	out := make([][]string, len(columns))
	for i, cn := range columns {
		col, err := t.Column(cn)
		if err != nil {
			return nil, err
		}
		ids := col.RowIDs()
		vals := make([]string, len(ids))
		d := col.Dict()
		for r, id := range ids {
			vals[r] = d.Value(id)
		}
		out[i] = vals
	}
	return out, nil
}

// Decompose evolves r into S and T at query level:
//
//	INSERT INTO S SELECT sCols FROM r;
//	INSERT INTO T SELECT DISTINCT tCols FROM r;
//
// Both inserts materialize tuples and re-compress the outputs from
// scratch.
func Decompose(r *colstore.Table, outS string, sCols []string, outT string, tCols []string) (*colstore.Table, *colstore.Table, error) {
	n := r.NumRows()

	// INSERT INTO S SELECT sCols FROM r.
	sVals, err := materialize(r, sCols)
	if err != nil {
		return nil, nil, err
	}
	sb, err := colstore.NewTableBuilder(outS, sCols, nil)
	if err != nil {
		return nil, nil, err
	}
	tuple := make([]string, len(sCols))
	for row := uint64(0); row < n; row++ {
		for c := range sVals {
			tuple[c] = sVals[c][row] // tuple formation
		}
		if err := sb.AppendRow(tuple); err != nil {
			return nil, nil, err
		}
	}
	s, err := sb.Finish() // re-compression
	if err != nil {
		return nil, nil, err
	}

	// INSERT INTO T SELECT DISTINCT tCols FROM r.
	tVals, err := materialize(r, tCols)
	if err != nil {
		return nil, nil, err
	}
	tb, err := colstore.NewTableBuilder(outT, tCols, nil)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[string]bool, 1024)
	tTuple := make([]string, len(tCols))
	var kb strings.Builder
	for row := uint64(0); row < n; row++ {
		kb.Reset()
		for c := range tVals {
			tTuple[c] = tVals[c][row]
			kb.WriteString(tTuple[c])
			kb.WriteByte(0)
		}
		k := kb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		if err := tb.AppendRow(tTuple); err != nil {
			return nil, nil, err
		}
	}
	t, err := tb.Finish()
	if err != nil {
		return nil, nil, err
	}
	return s, t, nil
}

// Merge evolves s and t into one table at query level:
//
//	INSERT INTO out SELECT s.*, t.extra FROM s JOIN t ON common;
//
// via decompress → hash join on materialized tuples → re-compress.
func Merge(s, t *colstore.Table, out string) (*colstore.Table, error) {
	common := intersect(s.ColumnNames(), t.ColumnNames())
	if len(common) == 0 {
		return nil, fmt.Errorf("queryevolve: tables %q and %q share no attributes", s.Name(), t.Name())
	}
	tExtra := minus(t.ColumnNames(), common)

	sVals, err := materialize(s, s.ColumnNames())
	if err != nil {
		return nil, err
	}
	commonTVals, err := materialize(t, common)
	if err != nil {
		return nil, err
	}
	extraTVals, err := materialize(t, tExtra)
	if err != nil {
		return nil, err
	}
	sKeyVals, err := materialize(s, common)
	if err != nil {
		return nil, err
	}

	// Build hash table on t.
	build := make(map[string][]uint64, t.NumRows())
	var kb strings.Builder
	for row := uint64(0); row < t.NumRows(); row++ {
		kb.Reset()
		for c := range commonTVals {
			kb.WriteString(commonTVals[c][row])
			kb.WriteByte(0)
		}
		build[kb.String()] = append(build[kb.String()], row)
	}

	outCols := append(append([]string{}, s.ColumnNames()...), tExtra...)
	ob, err := colstore.NewTableBuilder(out, outCols, nil)
	if err != nil {
		return nil, err
	}
	tuple := make([]string, len(outCols))
	for row := uint64(0); row < s.NumRows(); row++ {
		kb.Reset()
		for c := range sKeyVals {
			kb.WriteString(sKeyVals[c][row])
			kb.WriteByte(0)
		}
		for _, tRow := range build[kb.String()] {
			for c := range sVals {
				tuple[c] = sVals[c][row]
			}
			for c := range extraTVals {
				tuple[len(sVals)+c] = extraTVals[c][tRow]
			}
			if err := ob.AppendRow(tuple); err != nil {
				return nil, err
			}
		}
	}
	return ob.Finish()
}

func intersect(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, c := range b {
		inB[c] = true
	}
	var out []string
	for _, c := range a {
		if inB[c] {
			out = append(out, c)
		}
	}
	return out
}

func minus(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, c := range b {
		inB[c] = true
	}
	var out []string
	for _, c := range a {
		if !inB[c] {
			out = append(out, c)
		}
	}
	return out
}

package cods

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cods/internal/advisor"
	"cods/internal/colquery"
	"cods/internal/colstore"
	"cods/internal/core"
	"cods/internal/csvio"
	"cods/internal/expr"
	"cods/internal/plan"
	"cods/internal/smo"
	"cods/internal/storage"
)

// ErrClosed is returned by catalog-changing calls on a durable database
// after Close.
var ErrClosed = errors.New("cods: database closed")

// ErrUnknownStatement matches (via errors.Is) errors from Exec and
// ExecScript whose input is not a known SMO statement, and ErrParse
// matches any malformed statement. Servers use these to distinguish a
// client error (bad request) from an execution failure.
var (
	ErrUnknownStatement = smo.ErrUnknownStatement
	ErrParse            = smo.ErrParse
)

// ErrNotDurable matches (via errors.Is) errors from catalog-changing
// calls on a durable database caused by the storage layer failing to
// make committed state durable — a failed WAL write or checkpoint, or
// the poisoned state those leave behind until a Checkpoint succeeds.
// The statement itself was fine; servers map this to a 5xx, not a
// client error.
var ErrNotDurable = errors.New("durability failure")

// ErrNoTable matches (via errors.Is) errors from reads against a table
// that is not in the catalog — including one a concurrent evolution
// dropped after the caller last looked. Servers map it to "not found"
// rather than "bad request".
var ErrNoTable = core.ErrNoTable

// ErrVersionPruned matches (via errors.Is) Rollback failures against a
// schema version the retention policy (Config.RetainVersions, Prune, or
// the PRUNE statement) already retired. The concrete error is a
// *VersionPrunedError naming the retained rollback window — distinct
// from the plain "no schema version" error a version that never existed
// produces.
var ErrVersionPruned = core.ErrVersionPruned

// VersionPrunedError is the concrete error behind ErrVersionPruned: the
// requested version plus the inclusive [OldestRetained, Newest] window
// Rollback can still reach.
type VersionPrunedError = core.VersionPrunedError

// Config parameterizes a DB.
type Config struct {
	// Parallelism bounds the worker pool for per-value bitmap work; 0
	// means GOMAXPROCS.
	Parallelism int
	// ValidateFD makes DECOMPOSE TABLE verify losslessness before
	// evolving data, at the cost of one input scan.
	ValidateFD bool
	// Status, when non-nil, receives live data-evolution progress events
	// ("distinction", "bitmap filtering", ...) as operators execute.
	Status func(step string)
	// RetainVersions bounds how many previous schema versions stay
	// rollback-able: after every committed statement the catalog's
	// snapshot history is pruned to the current version plus its
	// RetainVersions predecessors, so memory no longer grows with
	// statement count (each DML statement is a version). Rollback to a
	// pruned version fails with ErrVersionPruned naming the retained
	// window. 0 (the default) keeps every version — the original
	// contract.
	RetainVersions int
	// AutoCompactPending, when positive, compacts a table's delta
	// overlay as soon as a DML statement leaves it with at least this
	// many pending rows (appended plus deletion marks): the overlay is
	// flushed into a rebuilt base and the same schema version
	// republishes, bounding overlay memory and per-read merge cost on
	// sustained write streams without explicit Compact or Checkpoint
	// calls. Readers are never blocked — compaction changes the physical
	// representation, not the contents. 0 disables auto-compaction.
	AutoCompactPending int
	// SegmentMergeRatio tunes the tiered merge policy over table row
	// segments: after a flush, a tail run of segments is folded together
	// whenever a segment is at most ratio× the rows behind it, keeping
	// per-table segment counts logarithmic. 0 means the default ratio
	// (2); negative disables merging.
	SegmentMergeRatio int
	// BackgroundMerge runs tiered segment merges on a background
	// goroutine instead of inline on the write path. Merges publish
	// through the usual atomic catalog swap, so readers never block.
	BackgroundMerge bool
	// RebuildOnFlush makes every overlay flush rebuild its table as one
	// monolithic segment — the pre-segmentation write path, kept as a
	// correctness oracle and benchmark baseline. Leave it off.
	RebuildOnFlush bool
	// RebuildEvolve makes every Schema Modification Operator run its
	// pre-segmentation monolithic algorithm, stitching each input table
	// into one segment before evolving it — kept as a correctness oracle
	// and benchmark baseline for the segment-wise map/merge evolution
	// path that is the default. Leave it off.
	RebuildEvolve bool
}

// DB is a CODS database: a catalog of bitmap-indexed column-store tables
// evolved in place by Schema Modification Operators.
//
// DB is safe for concurrent use, and reads never block. Every read —
// Query, Count, RunQuery, Rows, Describe, Save and friends — runs
// lock-free against the immutable catalog snapshot that was current when
// the call started (grab one explicitly with Snapshot for multi-step
// reads), so a long-running evolution never stalls query traffic. A
// reader observes a whole schema version — never a half-applied SMO — and
// because tables are immutable, results materialized before an evolution
// commits remain valid afterwards. Catalog-changing calls (Exec,
// ExecScript, Rollback, CreateTableFromRows, LoadCSV) serialize on an
// internal mutex, build the next version off to the side, and publish it
// with one atomic swap when they commit.
//
// A DB from Open or OpenDir lives in memory (persist explicitly with
// Save); a DB from OpenDurable additionally write-ahead-logs every
// catalog change, surviving crashes — see OpenDurable, Checkpoint, Close.
type DB struct {
	mu     sync.Mutex // cods:writerlock serializes catalog changes and the WAL; reads never take it
	engine *core.Engine
	cfg    Config
	// dir and wal are set by OpenDurable: every committed catalog change
	// is made durable before the call returns, either by appending the
	// statement to the write-ahead log or (for changes that cannot be
	// replayed from text: bulk loads, rollbacks, file-fed columns) by
	// checkpointing a fresh snapshot. walBroken is set when a WAL write
	// or checkpoint fails with the catalog already changed in memory: the
	// durable state is then missing a committed change, so further
	// catalog changes are refused until a Checkpoint re-establishes
	// log/state agreement.
	dir       string
	wal       *storage.WAL
	walBroken bool
	// plans memoizes join-query plan shapes across snapshots; keys carry
	// the catalog version, so evolutions invalidate naturally.
	plans *plan.Cache
}

// Open creates an empty in-memory database.
func Open(cfg Config) *DB {
	return &DB{plans: plan.NewCache(0), engine: core.New(core.Config{
		Parallelism:        cfg.Parallelism,
		ValidateFD:         cfg.ValidateFD,
		Status:             cfg.Status,
		RetainVersions:     cfg.RetainVersions,
		AutoCompactPending: cfg.AutoCompactPending,
		SegmentMergeRatio:  cfg.SegmentMergeRatio,
		BackgroundMerge:    cfg.BackgroundMerge,
		RebuildFlush:       cfg.RebuildOnFlush,
		RebuildEvolve:      cfg.RebuildEvolve,
	}), cfg: cfg}
}

// OpenDir opens a database previously persisted with Save. The result is
// not durable: later changes are kept only in memory until the next Save.
// Use OpenDurable for crash-safe operation.
func OpenDir(dir string, cfg Config) (*DB, error) {
	db := Open(cfg)
	tables, err := storage.Load(dir)
	if err != nil {
		return nil, err
	}
	for _, t := range tables {
		if err := db.engine.Register(t); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// OpenDurable opens a crash-safe database rooted at dir, creating it if
// needed. Recovery loads the latest snapshot (if any) and replays the
// write-ahead log on top of it; afterwards every committed catalog change
// is durable before the call that made it returns. Call Close when done
// and Checkpoint periodically to keep the log short.
func OpenDurable(dir string, cfg Config) (*DB, error) {
	db := Open(cfg)
	var snapEpoch uint64
	if storage.HasSnapshot(dir) {
		tables, epoch, err := storage.LoadSnapshot(dir)
		if err != nil {
			return nil, err
		}
		snapEpoch = epoch
		for _, t := range tables {
			if err := db.engine.Register(t); err != nil {
				return nil, err
			}
		}
	} else if storage.HasFlatCatalog(dir) {
		// The directory was written by plain Save. Opening it as an empty
		// durable catalog would silently orphan its tables behind the
		// first checkpoint's snapshot; make the mismatch explicit.
		return nil, fmt.Errorf("cods: %s holds a plain Save catalog, not a durable one; open it with OpenDir, or load its tables into a database opened with OpenDurable on a fresh directory", dir)
	}
	wal, err := storage.OpenWAL(dir, snapEpoch)
	if err != nil {
		return nil, err
	}
	if wal.Epoch() == snapEpoch {
		for _, s := range wal.Statements() {
			op, err := smo.Parse(s)
			if err != nil {
				wal.Close()
				return nil, fmt.Errorf("cods: replaying WAL statement %q: %w", s, err)
			}
			if _, err := db.engine.Apply(op); err != nil {
				wal.Close()
				return nil, fmt.Errorf("cods: replaying WAL statement %q: %w", s, err)
			}
		}
	} else {
		// The log predates the published snapshot: a crash hit between a
		// checkpoint's snapshot publish and its WAL reset. Every logged
		// statement is already in the snapshot; replaying would apply it
		// twice. Finish the interrupted checkpoint's log reset instead.
		if err := wal.Reset(snapEpoch); err != nil {
			wal.Close()
			return nil, err
		}
	}
	db.dir, db.wal = dir, wal
	return db, nil
}

// Save persists every table to a directory in compressed binary form. It
// reads one published catalog snapshot, so it writes a consistent schema
// version without blocking — or being blocked by — a running evolution.
//
// cods:lockfree
func (db *DB) Save(dir string) error {
	return db.Snapshot().Save(dir)
}

// Checkpoint writes a fresh snapshot of a durable database and truncates
// the write-ahead log, bounding recovery time. It takes the exclusive
// lock, so it runs between — never during — catalog changes.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dir == "" {
		return fmt.Errorf("cods: %w: Checkpoint requires a database opened with OpenDurable", errors.ErrUnsupported)
	}
	//lint:ignore codslint/lockscope checkpoints hold the writer lock across the snapshot fsync by design: durability before visibility, and readers never take this lock
	return db.checkpointLocked(false)
}

// checkpointLocked snapshots the catalog and resets the log. mutated
// says the caller already changed the in-memory catalog in a way the
// WAL cannot express (bulk load, rollback, file-fed column): a failure
// before the snapshot publishes then leaves that change durable
// nowhere, so the write path is poisoned — further statements must not
// be logged on top of the hole, or recovery would replay them against a
// snapshot missing it. An explicit Checkpoint of a fully-journaled
// catalog (mutated false) can fail before publishing without poisoning:
// the old snapshot plus the intact log still reproduce every commit.
// Once the new generation publishes, any failure (dir sync, log reset)
// always poisons, since appends would land in a stale-epoch log that
// recovery discards.
//
// cods:blocking — writes and fsyncs the snapshot directory.
func (db *DB) checkpointLocked(mutated bool) error {
	if db.wal == nil {
		return ErrClosed
	}
	fail := func(err error) error {
		if !mutated {
			return err
		}
		db.walBroken = true
		return fmt.Errorf("cods: %w: checkpoint snapshot failed (catalog changes disabled until a Checkpoint succeeds): %w", ErrNotDurable, err)
	}
	// The staged catalog, not the published one: when a caller deferred
	// publication, this checkpoint is what makes the pending change
	// durable, so it must capture that change.
	cat := db.engine.StagedCatalog()
	var tables []*colstore.Table
	for _, name := range cat.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return fail(err)
		}
		tables = append(tables, t)
	}
	// Publish a fresh snapshot generation, then retire the log it
	// subsumes. A crash between the two leaves a stale-epoch log that
	// recovery discards (OpenDurable). Never reuse a published epoch: a
	// prior checkpoint may have published its snapshot and then failed
	// before resetting the log, and rewriting the generation CURRENT
	// points at would leave recovery nothing good to load if we crash
	// mid-write.
	next := db.wal.Epoch() + 1
	cur, ok, err := storage.CurrentEpoch(db.dir)
	if err != nil {
		// The published epoch is unknown; picking one blindly could
		// rewrite the generation CURRENT points at.
		return fail(err)
	}
	if ok && cur >= next {
		next = cur + 1
	}
	published, err := storage.SaveSnapshot(db.dir, tables, next)
	if err != nil {
		if !published {
			return fail(err)
		}
		// The CURRENT swap happened, so recovery may already load the new
		// generation while the log still carries the old epoch; appends
		// would land in a log recovery discards. Poison regardless of
		// mutated.
		db.walBroken = true
		return fmt.Errorf("cods: %w: snapshot published but not finalized (catalog changes disabled until a Checkpoint succeeds): %w", ErrNotDurable, err)
	}
	if err := db.wal.Reset(next); err != nil {
		db.walBroken = true
		return fmt.Errorf("cods: %w: snapshot published but WAL not reset (catalog changes disabled until a Checkpoint succeeds): %w", ErrNotDurable, err)
	}
	db.walBroken = false
	// The snapshot persisted every table with its delta flushed in, and
	// the WAL entries that journaled the DML are gone; compact the
	// in-memory overlays to match, so deltas cannot grow without bound
	// across checkpoints. Compaction reuses the flush computed while
	// collecting tables above, so it cannot fail here — and if it ever
	// did, the overlays just stay pending, which is correct, merely
	// uncompacted.
	_ = db.engine.Compact()
	return nil
}

// Compact flushes every table's pending DML into a rebuilt base table,
// bounding the per-read cost of the delta overlay (tail scans, deletion
// masks) without changing any content or the schema version. On a
// durable database prefer Checkpoint, which compacts and additionally
// persists the state and truncates the write-ahead log; Compact alone
// never touches disk — recovery replays the journaled DML either way —
// and is the way to retire overlays on an in-memory database.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.engine.Compact()
}

// Prune retires rollback snapshots, keeping the current schema version
// plus its keepLast predecessors, and returns how many versions it
// retired. It is the explicit form of Config.RetainVersions (which
// enforces the same window automatically after every statement) and of
// the PRUNE KEEP n statement. Rollback to a retired version fails with
// ErrVersionPruned from then on; published snapshots, running readers
// and the history log are unaffected. Pruning is in-memory bookkeeping:
// on a durable database it is not journaled — recovery rebuilds the
// version sequence from snapshot plus log anyway.
func (db *DB) Prune(keepLast int) int {
	return db.engine.Prune(keepLast)
}

// MemStats reports the memory-pressure gauges of the write path: how
// many schema versions are retained for Rollback, how many delta-overlay
// rows are pending compaction, and how many compactions have run. It is
// lock-free — it answers even while an evolution or checkpoint holds the
// write path — so operators can poll it (GET /stats serves it) to watch
// retention and auto-compaction work.
type MemStats struct {
	// RetainedVersions counts catalog snapshots kept for Rollback,
	// current version included.
	RetainedVersions int
	// OldestRetainedVersion is the oldest schema version Rollback can
	// restore.
	OldestRetainedVersion int
	// PendingRows totals appended rows plus deletion marks across every
	// table's delta overlay.
	PendingRows uint64
	// Compactions counts overlay compactions (explicit, checkpoint, or
	// automatic) since the database opened.
	Compactions uint64
	// SegmentMerges counts tiered segment merges (inline and background,
	// after flushes and after evolutions) since the database opened.
	SegmentMerges uint64
	// Tables holds per-table segment-layout gauges, sorted by table
	// name. A segment count that keeps growing means the merge policy is
	// not keeping up with the write stream.
	Tables []TableSegments
}

// TableSegments is one table's segment-layout gauge: how many base
// segments the table holds and how skewed their row counts are.
type TableSegments struct {
	// Table is the table name.
	Table string
	// Segments is the number of base segments.
	Segments int
	// MinRows and MaxRows bound the per-segment row counts; both are 0
	// for an empty table.
	MinRows, MaxRows uint64
}

// MemStats returns the current memory-pressure gauges, lock-free.
// cods:lockfree
func (db *DB) MemStats() MemStats {
	ms := db.engine.MemStats()
	out := MemStats{
		RetainedVersions:      ms.RetainedVersions,
		OldestRetainedVersion: ms.OldestRetained,
		PendingRows:           ms.PendingRows,
		Compactions:           ms.Compactions,
		SegmentMerges:         ms.SegmentMerges,
	}
	for _, t := range ms.Tables {
		out.Tables = append(out.Tables, TableSegments{
			Table:    t.Table,
			Segments: t.Segments,
			MinRows:  t.MinRows,
			MaxRows:  t.MaxRows,
		})
	}
	return out
}

// Close releases a durable database's write-ahead log. Further
// catalog-changing calls fail with ErrClosed; reads keep working on the
// in-memory catalog. Close on an in-memory database is a no-op.
func (db *DB) Close() error {
	// Join in-flight background segment merges first: they publish through
	// the engine and must not race the process teardown that usually
	// follows Close.
	db.engine.WaitBackgroundMerges()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	//lint:ignore codslint/lockscope closing the WAL under the writer lock is what makes ErrClosed atomic with the log release; readers never take this lock
	err := db.wal.Close()
	db.wal = nil
	return err
}

// WaitBackgroundMerges blocks until every scheduled background segment
// merge (Config.BackgroundMerge) has completed or aborted. Tests and
// benchmarks use it to reach a deterministic segment layout.
func (db *DB) WaitBackgroundMerges() { db.engine.WaitBackgroundMerges() }

// Snapshot is an immutable, lock-free view of the database at one schema
// version. Every DB read method is equivalent to a one-shot call on a
// fresh Snapshot; grab one explicitly when a multi-step read (list tables,
// then describe and query them) must observe a single schema version even
// while evolutions commit concurrently. A Snapshot stays valid
// indefinitely — tables are immutable — it just stops reflecting catalog
// changes made after it was taken.
type Snapshot struct {
	cat   *core.Catalog
	cfg   Config
	plans *plan.Cache
}

// Snapshot returns the current published catalog version. It never
// blocks: even while an evolution is mid-operator, it returns the last
// committed version.
// cods:lockfree
func (db *DB) Snapshot() *Snapshot {
	return &Snapshot{cat: db.engine.Catalog(), cfg: db.cfg, plans: db.plans}
}

// Version returns the snapshot's schema version.
func (s *Snapshot) Version() int { return s.cat.Version() }

// Tables lists the snapshot's table names, sorted.
func (s *Snapshot) Tables() []string { return s.cat.Tables() }

// HasTable reports whether a table exists in the snapshot.
func (s *Snapshot) HasTable(name string) bool {
	_, err := s.cat.Overlay(name)
	return err == nil
}

// Columns returns a table's column names in schema order.
func (s *Snapshot) Columns(table string) ([]string, error) {
	ov, err := s.cat.Overlay(table)
	if err != nil {
		return nil, err
	}
	return ov.ColumnNames(), nil
}

// NumRows returns a table's row count, pending DML included.
func (s *Snapshot) NumRows(table string) (uint64, error) {
	ov, err := s.cat.Overlay(table)
	if err != nil {
		return 0, err
	}
	return ov.NumRows(), nil
}

// Rows materializes up to limit rows of a table starting at offset (limit
// 0 means all), pending DML included.
func (s *Snapshot) Rows(table string, offset, limit uint64) ([][]string, error) {
	ov, err := s.cat.Overlay(table)
	if err != nil {
		return nil, err
	}
	return ov.Rows(offset, limit)
}

// Describe returns schema and storage statistics for a table. Rows is
// the exact merged count (pending DML included); the per-column storage
// statistics describe the indexed base and pick up pending DML at the
// next flush or checkpoint — Describe never forces a flush, so schema
// polling (GET /schema) stays cheap under a write stream.
func (s *Snapshot) Describe(table string) (*TableInfo, error) {
	ov, err := s.cat.Overlay(table)
	if err != nil {
		return nil, err
	}
	t := ov.Base()
	info := &TableInfo{Name: t.Name(), Rows: ov.NumRows(), Key: t.Key()}
	for i := 0; i < t.NumColumns(); i++ {
		c := t.ColumnAt(i)
		st := c.Stats()
		info.Columns = append(info.Columns, ColumnInfo{
			Name:            c.Name(),
			Encoding:        c.Encoding().String(),
			DistinctValues:  c.DistinctCount(),
			CompressedBytes: c.CompressedSizeBytes(),
			Integer:         st.Integer,
			MinInt:          st.MinInt,
			MaxInt:          st.MaxInt,
		})
	}
	return info, nil
}

// Query returns the rows of a table satisfying a condition (same syntax
// as PARTITION TABLE's WHERE). Base rows evaluate on the bitmap index;
// rows appended by pending DML merge in without materializing the table.
func (s *Snapshot) Query(table, condition string) ([][]string, error) {
	ov, err := s.cat.Overlay(table)
	if err != nil {
		return nil, err
	}
	pred, err := expr.Parse(condition)
	if err != nil {
		return nil, err
	}
	return ov.Query(pred)
}

// Count returns the number of rows satisfying a condition without
// materializing them (a compressed popcount over the base plus a scan of
// the delta overlay's appended tail).
func (s *Snapshot) Count(table, condition string) (uint64, error) {
	ov, err := s.cat.Overlay(table)
	if err != nil {
		return 0, err
	}
	pred, err := expr.Parse(condition)
	if err != nil {
		return 0, err
	}
	return ov.Count(pred)
}

// RunQuery executes a query with optional joins, filtering, grouping,
// aggregation, ordering and limit against the snapshot. Every table —
// the root and each join — resolves from this one snapshot, so a join
// never observes two catalog versions, even while evolutions commit
// concurrently. Join queries go through the planner (internal/plan):
// single-table WHERE conjuncts are pushed into bitmap scans, joins are
// reordered by estimated cardinality, shared join keys are pre-reduced
// by a WAH semi-join, and the plan shape is cached across calls.
func (s *Snapshot) RunQuery(table string, q TableQuery) (*ResultSet, error) {
	pq := plan.Query{
		Select:      q.Select,
		From:        table,
		Where:       q.Where,
		GroupBy:     q.GroupBy,
		OrderBy:     q.OrderBy,
		Desc:        q.Desc,
		Limit:       q.Limit,
		Parallelism: s.cfg.Parallelism,
		Epoch:       strconv.Itoa(s.cat.Version()),
	}
	for _, j := range q.Joins {
		pq.Joins = append(pq.Joins, plan.Join{Table: j.Table, On: j.On})
	}
	for _, a := range q.Aggregates {
		f, ok := aggFuncs[a.Func]
		if !ok {
			return nil, fmt.Errorf("cods: unknown aggregate function %d", a.Func)
		}
		pq.Aggregates = append(pq.Aggregates, colquery.Agg{Func: f, Column: a.Column, As: a.As})
	}
	rs, err := plan.Run(s.cat.Table, pq, s.plans)
	if err != nil {
		return nil, err
	}
	return &ResultSet{Columns: rs.Columns, Rows: rs.Rows}, nil
}

// Select parses and executes one SELECT statement against the snapshot:
//
//	SELECT <list> FROM t [JOIN u ON (k1, ...)]... [WHERE <condition>]
//	    [GROUP BY g] [ORDER BY c [ASC|DESC]] [LIMIT n]
//
// <list> is '*', a column list, or an aggregate list (count(*),
// count_distinct(c), min(c), max(c), sum(c), avg(c)). It is the text
// form of RunQuery — same planner, same snapshot isolation — so queries
// can travel the same path as statements (REPL, scripts, HTTP).
func (s *Snapshot) Select(stmt string) (*ResultSet, error) {
	op, err := smo.Parse(stmt)
	if err != nil {
		return nil, err
	}
	sel, ok := op.(smo.Select)
	if !ok {
		return nil, fmt.Errorf("cods: executing %q: %w: expected a SELECT statement, got %s", stmt, ErrParse, op.Kind())
	}
	q := TableQuery{
		Select:  sel.Columns,
		Where:   sel.Where,
		GroupBy: sel.GroupBy,
		OrderBy: sel.OrderBy,
		Desc:    sel.Desc,
		Limit:   sel.Limit,
	}
	for _, j := range sel.Joins {
		q.Joins = append(q.Joins, Join{Table: j.Table, On: j.On})
	}
	for _, a := range sel.Aggs {
		f, ok := aggFuncsByName[a.Func]
		if !ok {
			return nil, fmt.Errorf("cods: unknown aggregate function %q", a.Func)
		}
		q.Aggregates = append(q.Aggregates, Agg{Func: f, Column: a.Column})
	}
	return s.RunQuery(sel.From, q)
}

// History returns the executed-operator log up to the snapshot's version.
// The copy is O(statements) — and DML creates a version per statement —
// so polling paths should use HistoryTail.
func (s *Snapshot) History() []HistoryEntry {
	var out []HistoryEntry
	for _, h := range s.cat.History() {
		out = append(out, HistoryEntry{Version: h.Version, Op: h.Op, Kind: h.Kind, Elapsed: h.Elapsed, Steps: h.Steps})
	}
	return out
}

// HistoryTail returns the most recent limit executed-operator entries
// (all of them when limit <= 0), oldest first. Cost is O(limit), not
// O(statements): the underlying log is append-only, so the tail is a
// view conversion, which keeps REPL history display and HTTP history
// endpoints cheap under sustained write streams.
func (s *Snapshot) HistoryTail(limit int) []HistoryEntry {
	tail := s.cat.HistoryTail(limit)
	out := make([]HistoryEntry, 0, len(tail))
	for _, h := range tail {
		out = append(out, HistoryEntry{Version: h.Version, Op: h.Op, Kind: h.Kind, Elapsed: h.Elapsed, Steps: h.Steps})
	}
	return out
}

// HistoryLen returns the total number of executed-operator entries
// without copying the log.
func (s *Snapshot) HistoryLen() int { return s.cat.HistoryLen() }

// Save persists the snapshot's tables to a directory in compressed binary
// form.
func (s *Snapshot) Save(dir string) error {
	var tables []*colstore.Table
	for _, name := range s.cat.Tables() {
		t, err := s.cat.Table(name)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	return storage.Save(dir, tables)
}

// replayable reports whether an operator can be re-executed from its text
// form alone. ADD COLUMN ... FROM 'file' depends on an external file that
// may change or vanish, so it is checkpointed instead of logged.
func replayable(op smo.Op) bool {
	a, ok := op.(smo.AddColumn)
	return !ok || a.ValuesFile == ""
}

// journalLocked makes one just-applied operator durable. Must hold the
// exclusive lock; call only when db.wal != nil.
//
// cods:blocking — appends to and fsyncs the write-ahead log.
func (db *DB) journalLocked(op smo.Op) error {
	if replayable(op) {
		if err := db.wal.Append(op.String()); err != nil {
			// The statement is live in memory but missing from the log;
			// until a snapshot captures it, further changes would log on
			// top of a hole, so poison the write path.
			db.walBroken = true
			return fmt.Errorf("cods: %w: statement applied but not durably logged (catalog changes disabled until a Checkpoint succeeds): %w", ErrNotDurable, err)
		}
		return nil
	}
	return db.checkpointLocked(true)
}

// failIfClosedLocked guards catalog-changing calls on a durable database:
// after Close, or after a failed WAL write or checkpoint left durable
// state missing a committed change, changes are refused rather than
// silently diverging from disk. A successful Checkpoint clears the
// broken state.
func (db *DB) failIfClosedLocked() error {
	if db.dir == "" {
		return nil
	}
	if db.wal == nil {
		return ErrClosed
	}
	if db.walBroken {
		return fmt.Errorf("cods: %w: a committed catalog change is not yet durable after a failed WAL write or checkpoint; run Checkpoint to restore durability", ErrNotDurable)
	}
	return nil
}

// Result reports one executed operator.
type Result struct {
	// Op is the operator in canonical text form.
	Op string
	// Kind is the operator's Table 1 name, e.g. "DECOMPOSE TABLE".
	Kind string
	// Version is the schema version after the operator.
	Version int
	// Elapsed is the data-evolution time.
	Elapsed time.Duration
	// Steps lists the evolution status events (the demo UI's "Data
	// Evolution Status").
	Steps []string
	// Created and Dropped list catalog changes.
	Created []string
	Dropped []string
}

func toResult(r *core.Result) *Result {
	return &Result{
		Op:      r.Op.String(),
		Kind:    r.Op.Kind(),
		Version: r.Version,
		Elapsed: r.Elapsed,
		Steps:   r.Steps,
		Created: r.Created,
		Dropped: r.Dropped,
	}
}

// Exec parses and executes one Schema Modification Operator. The syntax
// (keywords case-insensitive):
//
//	CREATE TABLE t (c1, c2, ...) [KEY (k1, ...)]
//	DROP TABLE t
//	RENAME TABLE old TO new
//	COPY TABLE src TO dst
//	UNION TABLES a, b INTO out
//	PARTITION TABLE t WHERE <condition> INTO yes, no
//	DECOMPOSE TABLE r INTO s (c1, ...), t (c1, ...)
//	MERGE TABLES a, b INTO out
//	ADD COLUMN c TO t DEFAULT 'v'
//	ADD COLUMN c TO t FROM 'file'
//	DROP COLUMN c FROM t
//	RENAME COLUMN old TO new IN t
//
// and the DML statements, which change tuples rather than schema:
//
//	INSERT INTO t VALUES ('v1', 'v2', ...)
//	DELETE FROM t [WHERE <condition>]
//	UPDATE t SET c = 'v' [WHERE <condition>]
//
// plus the retention statement PRUNE KEEP n, which retires rollback
// snapshots older than the last n versions (the statement form of
// DB.Prune; it produces no new schema version).
//
// DML executes against a per-table delta overlay (appended rows plus a
// deletion bitmap over the immutable base), published copy-on-write like
// every other catalog change: reads merge base and delta transparently,
// a running evolution never observes half a statement, and Checkpoint
// (or Compact) folds the overlay into a rebuilt base. An evolution
// operator over a table with pending DML flushes the delta first, so
// DECOMPOSE/MERGE semantics are unchanged. Declared keys are enforced:
// INSERT rejects duplicate key values and UPDATE of a key column
// validates uniqueness before committing.
//
// Conditions are comparisons (= != < <= > >=) over column values combined
// with AND/OR/NOT. Values that parse as 64-bit integers compare
// numerically and order before all non-integer values; other values
// compare lexicographically — one total order shared with ORDER BY and
// MIN/MAX.
//
// On a durable database, a non-nil Result alongside a non-nil error
// means the statement committed in memory but could not be made durable
// (see Checkpoint); retrying it would re-apply a live statement.
func (db *DB) Exec(op string) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.failIfClosedLocked(); err != nil {
		return nil, err
	}
	parsed, err := smo.Parse(op)
	if err != nil {
		return nil, err
	}
	if db.wal != nil {
		// Durability before visibility: hold the new version back from
		// lock-free readers until it is journaled, so no client acts on a
		// schema version a crash could take back. Publication still runs
		// if journaling fails — the statement is then live in memory by
		// contract (see below), just not yet durable.
		publish := db.engine.DeferPublication()
		defer publish()
	}
	res, err := db.engine.Apply(parsed)
	if err != nil {
		return nil, err
	}
	out := toResult(res)
	if db.wal != nil {
		//lint:ignore codslint/lockscope durability before visibility: the WAL fsync must complete under the writer lock before the deferred publish makes the version visible; readers never take this lock
		if err := db.journalLocked(parsed); err != nil {
			// The statement committed but could not be made durable;
			// callers must see the result or they would retry a live
			// statement.
			return out, err
		}
	}
	return out, nil
}

// ExecScript executes a sequence of operators separated by newlines or
// semicolons ("--" and "#" start comments), stopping at the first failure.
func (db *DB) ExecScript(script string) ([]*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.failIfClosedLocked(); err != nil {
		return nil, err
	}
	ops, err := smo.ParseScript(script)
	if err != nil {
		return nil, err
	}
	if db.wal != nil {
		// As in Exec: committed statements become reader-visible only
		// after the batched journal append (or checkpoint) below.
		publish := db.engine.DeferPublication()
		defer publish()
	}
	results, execErr := db.engine.ApplyScript(ops)
	out := make([]*Result, len(results))
	for i, r := range results {
		out[i] = toResult(r)
	}
	// Operators applied before a mid-script failure are committed, so they
	// are journaled even when execErr is non-nil — in one batched append
	// (a single fsync under the exclusive lock, not one per statement). A
	// script containing a non-replayable operator checkpoints once
	// instead of logging. A journal/checkpoint failure still returns the
	// results: the statements are live in the catalog, and callers (the
	// HTTP server) must see what committed to retry the remainder safely.
	if db.wal != nil && len(results) > 0 {
		journal := true
		for _, r := range results {
			if !replayable(r.Op) {
				journal = false
				break
			}
		}
		if journal {
			stmts := make([]string, len(results))
			for i, r := range results {
				stmts[i] = r.Op.String()
			}
			//lint:ignore codslint/lockscope durability before visibility: the batched WAL fsync must complete under the writer lock before the deferred publish; readers never take this lock
			if err := db.wal.AppendAll(stmts); err != nil {
				// Committed statements are missing from the log; poison
				// the write path as journalLocked would.
				db.walBroken = true
				err = fmt.Errorf("cods: %w: statements applied but not durably logged (catalog changes disabled until a Checkpoint succeeds): %w", ErrNotDurable, err)
				return out, errors.Join(execErr, err)
			}
			//lint:ignore codslint/lockscope a non-replayable statement must be checkpointed under the writer lock before it becomes visible; readers never take this lock
		} else if err := db.checkpointLocked(true); err != nil {
			return out, errors.Join(execErr, err)
		}
	}
	return out, execErr
}

// CreateTableFromRows builds a table from in-memory rows and registers it.
func (db *DB) CreateTableFromRows(name string, columns []string, key []string, rows [][]string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.failIfClosedLocked(); err != nil {
		return err
	}
	tb, err := colstore.NewTableBuilder(name, columns, key)
	if err != nil {
		return err
	}
	tb.Parallelism = db.cfg.Parallelism
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			return err
		}
	}
	t, err := tb.Finish()
	if err != nil {
		return err
	}
	if db.wal != nil {
		publish := db.engine.DeferPublication()
		defer publish()
	}
	if err := db.engine.Register(t); err != nil {
		return err
	}
	// Bulk-loaded rows exist nowhere in statement form; checkpoint so the
	// snapshot carries them.
	if db.wal != nil {
		//lint:ignore codslint/lockscope bulk loads cannot be replayed from the WAL, so the snapshot must be durable under the writer lock before the deferred publish; readers never take this lock
		return db.checkpointLocked(true)
	}
	return nil
}

// LoadCSV loads a CSV file (header row first) as a new table.
func (db *DB) LoadCSV(path, table string, key ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.failIfClosedLocked(); err != nil {
		return err
	}
	t, err := csvio.LoadP(path, table, key, db.cfg.Parallelism)
	if err != nil {
		return err
	}
	if db.wal != nil {
		publish := db.engine.DeferPublication()
		defer publish()
	}
	if err := db.engine.Register(t); err != nil {
		return err
	}
	if db.wal != nil {
		//lint:ignore codslint/lockscope file-fed loads cannot be replayed from the WAL, so the snapshot must be durable under the writer lock before the deferred publish; readers never take this lock
		return db.checkpointLocked(true)
	}
	return nil
}

// SaveCSV writes a table to a CSV file.
// cods:lockfree
func (db *DB) SaveCSV(path, table string) error {
	t, err := db.engine.Catalog().Table(table)
	if err != nil {
		return err
	}
	return csvio.Save(path, t)
}

// Tables lists the catalog's table names, sorted.
// cods:lockfree
func (db *DB) Tables() []string {
	return db.Snapshot().Tables()
}

// HasTable reports whether a table exists.
// cods:lockfree
func (db *DB) HasTable(name string) bool {
	return db.Snapshot().HasTable(name)
}

// ColumnInfo describes one column of a table, including the planner's
// cardinality statistics (colstore.Column.Stats).
type ColumnInfo struct {
	Name            string
	Encoding        string
	DistinctValues  int
	CompressedBytes uint64
	// Integer reports whether every distinct value parses as an int64;
	// MinInt and MaxInt then bound the values numerically.
	Integer        bool
	MinInt, MaxInt int64
}

// TableInfo describes a table's schema and physical footprint.
type TableInfo struct {
	Name    string
	Rows    uint64
	Key     []string
	Columns []ColumnInfo
}

// Describe returns schema and storage statistics for a table.
// cods:lockfree
func (db *DB) Describe(table string) (*TableInfo, error) {
	return db.Snapshot().Describe(table)
}

// Columns returns a table's column names in schema order.
// cods:lockfree
func (db *DB) Columns(table string) ([]string, error) {
	return db.Snapshot().Columns(table)
}

// NumRows returns a table's row count.
// cods:lockfree
func (db *DB) NumRows(table string) (uint64, error) {
	return db.Snapshot().NumRows(table)
}

// Rows materializes up to limit rows of a table starting at offset (limit
// 0 means all).
// cods:lockfree
func (db *DB) Rows(table string, offset, limit uint64) ([][]string, error) {
	return db.Snapshot().Rows(table, offset, limit)
}

// Query returns the rows of a table satisfying a condition (same syntax
// as PARTITION TABLE's WHERE). The condition is evaluated on the bitmap
// index — once per distinct value, not once per row, fanned out over the
// configured Parallelism.
// cods:lockfree
func (db *DB) Query(table, condition string) ([][]string, error) {
	return db.Snapshot().Query(table, condition)
}

// Count returns the number of rows satisfying a condition without
// materializing them (a compressed popcount).
// cods:lockfree
func (db *DB) Count(table, condition string) (uint64, error) {
	return db.Snapshot().Count(table, condition)
}

// Version returns the schema version (incremented per applied operator).
// Lock-free: it always answers, even mid-evolution, reporting the last
// committed version.
// cods:lockfree
func (db *DB) Version() int {
	return db.Snapshot().Version()
}

// Rollback restores the catalog to an earlier schema version. Versioned
// catalogs share immutable column data, so keeping and restoring versions
// is nearly free. The rollback is itself recorded as a new version.
//
// Retention bounds how far back Rollback reaches: a version retired by
// Config.RetainVersions, Prune, or PRUNE KEEP fails with an error
// matching ErrVersionPruned that names the retained window, while a
// version that never existed fails with a plain "no schema version"
// error.
func (db *DB) Rollback(version int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.failIfClosedLocked(); err != nil {
		return err
	}
	if db.wal != nil {
		publish := db.engine.DeferPublication()
		defer publish()
	}
	if err := db.engine.Rollback(version); err != nil {
		return err
	}
	// Version numbers restart from the recovery point on reopen, so a
	// logged "rollback to N" would be ambiguous; snapshot the rolled-back
	// state instead.
	if db.wal != nil {
		//lint:ignore codslint/lockscope rollbacks cannot be replayed from the WAL, so the snapshot must be durable under the writer lock before the deferred publish; readers never take this lock
		return db.checkpointLocked(true)
	}
	return nil
}

// AggFunc is an aggregate function for RunQuery.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota // COUNT(*)
	CountDistinct
	Min
	Max
	Sum
	Avg
)

var aggFuncs = map[AggFunc]colquery.AggFunc{
	Count: colquery.Count, CountDistinct: colquery.CountDistinct,
	Min: colquery.Min, Max: colquery.Max, Sum: colquery.Sum, Avg: colquery.Avg,
}

// aggFuncsByName maps the SELECT statement's aggregate spellings to
// AggFunc values.
var aggFuncsByName = map[string]AggFunc{
	"count": Count, "count_distinct": CountDistinct,
	"min": Min, "max": Max, "sum": Sum, "avg": Avg,
}

// Agg is one aggregate column: Func over Column, named As (optional).
// Column is ignored for Count.
type Agg struct {
	Func   AggFunc
	Column string
	As     string
}

// Join is one inner-join step of a TableQuery.
type Join struct {
	// Table is the table to join against the query so far.
	Table string
	// On lists the shared column names to match on (USING-style): each
	// must exist on both sides, and appears once in the joined output.
	On []string
}

// TableQuery describes a query for RunQuery. Without Joins it reads one
// table; with Joins, Select/Where/GroupBy/OrderBy name columns of the
// joined output (the root table's schema, then each join's non-key
// columns, in written order).
type TableQuery struct {
	// Select lists projected columns (empty = all; ignored with
	// Aggregates).
	Select []string
	// Joins are inner joins applied to the queried table. The planner
	// picks the execution order; the written order fixes the schema.
	Joins []Join
	// Where is an optional predicate in the PARTITION condition syntax.
	Where string
	// GroupBy groups by one column; requires Aggregates.
	GroupBy string
	// Aggregates computes aggregate output columns.
	Aggregates []Agg
	// OrderBy sorts by one output column; Desc reverses.
	OrderBy string
	Desc    bool
	// Limit caps output rows (0 = unlimited).
	Limit int
}

// ResultSet is a materialized query result.
type ResultSet struct {
	Columns []string
	Rows    [][]string
}

// RunQuery executes a query with optional joins, filtering, grouping,
// aggregation, ordering and limit against one table. Predicates and COUNT
// aggregates are evaluated on compressed bitmaps — once per distinct
// value, never per row. Joins run through the cost-based planner; all
// tables resolve from one snapshot (see Snapshot.RunQuery).
// cods:lockfree
func (db *DB) RunQuery(table string, q TableQuery) (*ResultSet, error) {
	return db.Snapshot().RunQuery(table, q)
}

// Select parses and executes one SELECT statement (see Snapshot.Select)
// against the current catalog version.
// cods:lockfree
func (db *DB) Select(stmt string) (*ResultSet, error) {
	return db.Snapshot().Select(stmt)
}

// HistoryEntry records one executed operator.
type HistoryEntry struct {
	Version int
	Op      string
	Kind    string
	Elapsed time.Duration
	Steps   []string
}

// History returns the executed-operator log in order. Prefer HistoryTail
// on polling paths: the full copy is O(statements).
// cods:lockfree
func (db *DB) History() []HistoryEntry {
	return db.Snapshot().History()
}

// HistoryTail returns the most recent limit executed-operator entries
// (all when limit <= 0), oldest first, at O(limit) cost.
// cods:lockfree
func (db *DB) HistoryTail(limit int) []HistoryEntry {
	return db.Snapshot().HistoryTail(limit)
}

// FDSuggestion is a decomposition opportunity discovered from the data: a
// functional dependency makes part of a table redundant, and Operator is
// the ready-to-run DECOMPOSE TABLE statement that removes the redundancy.
type FDSuggestion struct {
	// Operator is the suggested SMO in Exec syntax.
	Operator string
	// FDs describes the discovered dependencies justifying it.
	FDs []string
	// SavedCells estimates how many redundant attribute cells the
	// decomposition removes.
	SavedCells uint64
}

// Advise discovers functional dependencies in a table's data and suggests
// decompositions, ranked by removed redundancy. This serves the paper's
// "new information about the data" evolution scenario (§1): the advisor
// produces the knowledge, Exec applies it.
// cods:lockfree
func (db *DB) Advise(table string) ([]FDSuggestion, error) {
	t, err := db.engine.Catalog().Table(table)
	if err != nil {
		return nil, err
	}
	suggestions, err := advisor.Suggest(t)
	if err != nil {
		return nil, err
	}
	var out []FDSuggestion
	for _, s := range suggestions {
		fs := FDSuggestion{Operator: s.Op.String(), SavedCells: s.SavedCells}
		for _, fd := range s.FDs {
			fs.FDs = append(fs.FDs, fd.String())
		}
		out = append(out, fs)
	}
	return out, nil
}

// Validate checks the structural invariants of every table (per-value
// bitmaps disjoint and complete, declared keys unique). It validates one
// catalog snapshot, consistent even while evolutions commit concurrently.
// cods:lockfree
func (db *DB) Validate() error {
	cat := db.engine.Catalog()
	for _, name := range cat.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return err
		}
		if err := t.Validate(); err != nil {
			return err
		}
		if err := t.ValidateKey(); err != nil {
			return fmt.Errorf("cods: %w", err)
		}
	}
	return nil
}

package cods_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"cods"
)

// parkedDB returns a DB whose first evolution status event parks the
// executing SMO until release is closed. The returned parked channel
// closes once the evolution is holding the write path mid-operator.
func parkedDB(t *testing.T) (db *cods.DB, parked chan struct{}, release chan struct{}) {
	t.Helper()
	parked = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	db = cods.Open(cods.Config{Parallelism: 2, Status: func(string) {
		once.Do(func() {
			close(parked)
			<-release
		})
	}})
	var rows [][]string
	for i := 0; i < 500; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("e%03d", i%50),
			fmt.Sprintf("s%03d", i),
			fmt.Sprintf("a%02d", i%25),
		})
	}
	if err := db.CreateTableFromRows("R", []string{"Employee", "Skill", "Address"}, nil, rows); err != nil {
		t.Fatal(err)
	}
	return db, parked, release
}

// TestReadsDuringParkedEvolution parks a DECOMPOSE mid-operator (via the
// Status hook, while it holds the writer lock) and asserts that every
// read path completes against the pre-evolution snapshot without waiting
// — the paper's online-evolution promise. Run under -race this also
// checks the snapshot publication for data races.
func TestReadsDuringParkedEvolution(t *testing.T) {
	db, parked, release := parkedDB(t)
	v0 := db.Version()

	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
		done <- err
	}()
	<-parked

	// The evolution owns the write path, parked mid-operator. Every read
	// must complete promptly against the prior snapshot.
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		if got := db.Version(); got != v0 {
			t.Errorf("Version during parked evolution = %d, want %d", got, v0)
		}
		if tables := db.Tables(); len(tables) != 1 || tables[0] != "R" {
			t.Errorf("Tables during parked evolution = %v, want [R]", tables)
		}
		if db.HasTable("S") || db.HasTable("T") {
			t.Error("half-applied DECOMPOSE outputs visible to readers")
		}
		got, err := db.Query("R", "Employee = 'e001'")
		if err != nil {
			t.Errorf("Query during parked evolution: %v", err)
		} else if len(got) != 10 {
			t.Errorf("Query returned %d rows, want 10", len(got))
		}
		rs, err := db.RunQuery("R", cods.TableQuery{
			GroupBy:    "Employee",
			Aggregates: []cods.Agg{{Func: cods.Count}},
		})
		if err != nil {
			t.Errorf("RunQuery during parked evolution: %v", err)
		} else if len(rs.Rows) != 50 {
			t.Errorf("RunQuery returned %d groups, want 50", len(rs.Rows))
		}
		if rows, err := db.Rows("R", 0, math.MaxUint64); err != nil {
			t.Errorf("Rows during parked evolution: %v", err)
		} else if len(rows) != 500 {
			t.Errorf("Rows(0, MaxUint64) returned %d rows, want 500", len(rows))
		}
		if n := len(db.History()); n != 0 {
			t.Errorf("History has %d entries mid-evolution, want 0", n)
		}
	}()

	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("reads blocked behind a parked evolution")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// After commit, a fresh snapshot observes the whole new version.
	if got := db.Version(); got != v0+1 {
		t.Fatalf("Version after evolution = %d, want %d", got, v0+1)
	}
	if db.HasTable("R") || !db.HasTable("S") || !db.HasTable("T") {
		t.Fatalf("catalog after evolution = %v", db.Tables())
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPinsSchemaVersion checks that an explicitly held Snapshot
// keeps answering from its schema version after later evolutions and
// rollbacks commit.
func TestSnapshotPinsSchemaVersion(t *testing.T) {
	db := cods.Open(cods.Config{})
	rows := [][]string{{"jones", "typing", "425 Grant Ave"}, {"ellis", "alchemy", "747 Industrial Way"}}
	if err := db.CreateTableFromRows("R", []string{"Employee", "Skill", "Address"}, nil, rows); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()

	if _, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"); err != nil {
		t.Fatal(err)
	}

	if got := snap.Version(); got != 0 {
		t.Fatalf("pinned snapshot version = %d, want 0", got)
	}
	if !snap.HasTable("R") || snap.HasTable("S") {
		t.Fatalf("pinned snapshot tables = %v, want [R]", snap.Tables())
	}
	n, err := snap.NumRows("R")
	if err != nil || n != 2 {
		t.Fatalf("pinned snapshot NumRows(R) = %d, %v", n, err)
	}
	if _, err := snap.Query("S", "Employee = 'jones'"); !errors.Is(err, cods.ErrNoTable) {
		t.Fatalf("pinned snapshot query of future table: err = %v, want ErrNoTable", err)
	}
	// The live DB sees the new version.
	if !db.HasTable("S") || db.HasTable("R") {
		t.Fatalf("live catalog = %v", db.Tables())
	}

	// Rollback publishes the restored version; the pinned snapshot is
	// still unaffected.
	if err := db.Rollback(0); err != nil {
		t.Fatal(err)
	}
	if !db.HasTable("R") {
		t.Fatalf("catalog after rollback = %v", db.Tables())
	}
	if got := snap.Version(); got != 0 {
		t.Fatalf("pinned snapshot version after rollback = %d, want 0", got)
	}
}

// TestErrNoTableFromReads checks the public sentinel on facade reads.
func TestErrNoTableFromReads(t *testing.T) {
	db := cods.Open(cods.Config{})
	if _, err := db.Query("ghost", "a = 'x'"); !errors.Is(err, cods.ErrNoTable) {
		t.Fatalf("Query: err = %v, want ErrNoTable", err)
	}
	if _, err := db.RunQuery("ghost", cods.TableQuery{}); !errors.Is(err, cods.ErrNoTable) {
		t.Fatalf("RunQuery: err = %v, want ErrNoTable", err)
	}
	if _, err := db.NumRows("ghost"); !errors.Is(err, cods.ErrNoTable) {
		t.Fatalf("NumRows: err = %v, want ErrNoTable", err)
	}
	if _, err := db.Rows("ghost", 0, 1); !errors.Is(err, cods.ErrNoTable) {
		t.Fatalf("Rows: err = %v, want ErrNoTable", err)
	}
}

// TestRowsHugeLimitThroughFacade is the public-API face of the
// colstore.Table.Rows overflow regression: a limit of MaxUint64 must
// return all rows, not panic or misallocate.
func TestRowsHugeLimitThroughFacade(t *testing.T) {
	db := cods.Open(cods.Config{})
	var rows [][]string
	for i := 0; i < 100; i++ {
		rows = append(rows, []string{fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)})
	}
	if err := db.CreateTableFromRows("T", []string{"K", "V"}, nil, rows); err != nil {
		t.Fatal(err)
	}
	got, err := db.Rows("T", 0, math.MaxUint64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("Rows(0, MaxUint64) returned %d rows, want 100", len(got))
	}
	got, err = db.Rows("T", 90, math.MaxUint64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0][0] != "k90" {
		t.Fatalf("Rows(90, MaxUint64) = %d rows starting %v", len(got), got[0])
	}
}

package cods_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cods"
)

// TestSegmentedFlushPropertyVsRebuildOracle drives two databases through
// identical random interleavings of keyed DML, flushes, retention pruning
// and schema evolutions (DECOMPOSE/MERGE and PARTITION/UNION cycles). One
// flushes segmented and evolves segment-wise (the production paths), the
// other with RebuildOnFlush and RebuildEvolve — the pre-segmentation
// monolithic algorithms kept as oracle. After every statement both must
// agree on the table set, every table's exact row sequence, and
// point/range query results. Runs under -race via the root package's
// race-matrix entry.
func TestSegmentedFlushPropertyVsRebuildOracle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSegProp(t, seed, 140)
		})
	}
}

func runSegProp(t *testing.T, seed int64, nops int) {
	cfg := cods.Config{Parallelism: 2, AutoCompactPending: 16, RetainVersions: 8}
	sut := cods.Open(cfg)
	ocfg := cfg
	ocfg.RebuildOnFlush = true
	ocfg.RebuildEvolve = true
	oracle := cods.Open(ocfg)

	seedRows := make([][]string, 20)
	for i := range seedRows {
		seedRows[i] = []string{fmt.Sprintf("k%04d", i), fmt.Sprintf("g%d", i%4), fmt.Sprintf("v%d", i%6)}
	}
	for _, db := range []*cods.DB{sut, oracle} {
		if err := db.CreateTableFromRows("T", []string{"K", "G", "V"}, []string{"K"}, seedRows); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	nextKey := 20
	// T cycles through three shapes: whole, decomposed into A (K, G) and
	// B (K, V), or partitioned into P1/P2 by a G predicate. DML routes to
	// whichever tables currently exist.
	decomposed := false
	partitioned := false
	partG := 0 // the G group PARTITION sent to P2
	okDML, okEvolve, okPartition := 0, 0, 0
	for step := 0; step < nops; step++ {
		var stmts []string
		kind := "exec"
		evolve := "" // evolution target state: "decomposed" / "partitioned" / "whole"
		switch r := rng.Intn(100); {
		case r < 30: // insert, sometimes a deliberate duplicate key
			k := nextKey
			if !decomposed && rng.Intn(5) == 0 {
				k = rng.Intn(nextKey)
			} else {
				nextKey++
			}
			g := rng.Intn(4)
			switch {
			case decomposed:
				// Keep the decomposition join-compatible: the same key
				// lands in both halves.
				stmts = []string{
					fmt.Sprintf("INSERT INTO A VALUES ('k%04d', 'g%d')", k, g),
					fmt.Sprintf("INSERT INTO B VALUES ('k%04d', 'v%d')", k, rng.Intn(6)),
				}
			case partitioned:
				// Respect the partition predicate: the row goes to the
				// half its G group belongs to.
				target := "P1"
				if g == partG {
					target = "P2"
				}
				stmts = []string{fmt.Sprintf("INSERT INTO %s VALUES ('k%04d', 'g%d', 'v%d')", target, k, g, rng.Intn(6))}
			default:
				stmts = []string{fmt.Sprintf("INSERT INTO T VALUES ('k%04d', 'g%d', 'v%d')", k, g, rng.Intn(6))}
			}
		case r < 45:
			v, k := rng.Intn(6), rng.Intn(nextKey)
			for _, tgt := range updateTargets(decomposed, partitioned) {
				stmts = append(stmts, fmt.Sprintf("UPDATE %s SET V = 'v%d' WHERE K = 'k%04d'", tgt, v, k))
			}
		case r < 55:
			k := rng.Intn(nextKey)
			for _, tgt := range dmlTables(decomposed, partitioned) {
				stmts = append(stmts, fmt.Sprintf("DELETE FROM %s WHERE K = 'k%04d'", tgt, k))
			}
		case r < 62:
			if decomposed {
				// A group-delete on one half would break the join's
				// foreign key; fall back to a keyed delete on both.
				k := rng.Intn(nextKey)
				stmts = []string{
					fmt.Sprintf("DELETE FROM A WHERE K = 'k%04d'", k),
					fmt.Sprintf("DELETE FROM B WHERE K = 'k%04d'", k),
				}
			} else {
				g := rng.Intn(8)
				for _, tgt := range dmlTables(false, partitioned) {
					stmts = append(stmts, fmt.Sprintf("DELETE FROM %s WHERE G = 'g%d'", tgt, g))
				}
			}
		case r < 75:
			kind = "compact"
		case r < 82:
			stmts = []string{fmt.Sprintf("PRUNE KEEP %d", 1+rng.Intn(4))}
		case r < 90:
			switch {
			case decomposed:
				evolve = "whole"
				stmts = []string{"MERGE TABLES A, B INTO T"}
			case partitioned:
				evolve = "whole"
				stmts = []string{"UNION TABLES P1, P2 INTO T"}
			case rng.Intn(2) == 0:
				evolve = "partitioned"
				partG = rng.Intn(4)
				stmts = []string{fmt.Sprintf("PARTITION TABLE T WHERE G != 'g%d' INTO P1, P2", partG)}
			default:
				evolve = "decomposed"
				stmts = []string{"DECOMPOSE TABLE T INTO A (K, G), B (K, V)"}
			}
		case r < 95:
			kind = "copydrop"
		default:
			kind = "rows" // pure read step; comparison below does the work
		}

		switch kind {
		case "compact":
			if err := sut.Compact(); err != nil {
				t.Fatalf("step %d: sut compact: %v", step, err)
			}
			if err := oracle.Compact(); err != nil {
				t.Fatalf("step %d: oracle compact: %v", step, err)
			}
		case "copydrop":
			src := "T"
			if decomposed {
				src = "A"
			} else if partitioned {
				src = "P1"
			}
			for _, s := range []string{"COPY TABLE " + src + " TO Tmp", "DROP TABLE Tmp"} {
				_, e1 := sut.Exec(s)
				_, e2 := oracle.Exec(s)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("step %d: %q diverged: sut=%v oracle=%v", step, s, e1, e2)
				}
			}
		case "exec":
			for _, stmt := range stmts {
				var preDecompose [][]string
				if evolve == "decomposed" {
					if rows, err := sut.Rows("T", 0, 0); err == nil {
						preDecompose = rows
					}
				}
				_, e1 := sut.Exec(stmt)
				_, e2 := oracle.Exec(stmt)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("step %d: %q diverged: sut=%v oracle=%v", step, stmt, e1, e2)
				}
				if e1 != nil {
					continue
				}
				if evolve == "decomposed" {
					checkDecomposeJoinOracle(t, step, sut, oracle, preDecompose)
				}
				if evolve != "" {
					okEvolve++
					if evolve == "partitioned" {
						okPartition++
					}
					decomposed = evolve == "decomposed"
					partitioned = evolve == "partitioned"
				} else if stmt[0] != 'P' { // everything but PRUNE is DML
					okDML++
				}
			}
		}

		compareDBs(t, step, sut, oracle, nextKey, rng)
	}
	if err := sut.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Validate(); err != nil {
		t.Fatal(err)
	}
	// Guard against the run silently degenerating into consistent errors:
	// the interleaving must have landed real DML, real evolutions, and at
	// least one PARTITION (so the UNION leg of the cycle ran too).
	if okDML < nops/4 || okEvolve < 2 || okPartition < 1 {
		t.Fatalf("degenerate run: %d successful DML, %d successful evolutions (%d partitions)", okDML, okEvolve, okPartition)
	}
}

// dmlTables lists the tables a keyed statement must touch in the current
// shape: both halves of a decomposition or partition, T otherwise.
func dmlTables(decomposed, partitioned bool) []string {
	switch {
	case decomposed:
		return []string{"A", "B"}
	case partitioned:
		return []string{"P1", "P2"}
	}
	return []string{"T"}
}

// updateTargets lists the tables a V-column update must touch: only B has
// V while decomposed; a partitioned key lives in exactly one half, so the
// update runs against both (a no-op on the half without the key).
func updateTargets(decomposed, partitioned bool) []string {
	if decomposed {
		return []string{"B"}
	}
	if partitioned {
		return []string{"P1", "P2"}
	}
	return []string{"T"}
}

// compareDBs asserts the two databases are observably identical: same
// tables, byte-identical row sequences (segmented flush must preserve the
// exact row order the rebuild produces), and matching point-, range- and
// count-query results.
// checkDecomposeJoinOracle asserts the evolution oracle right after a
// DECOMPOSE lands: SELECT joining the outputs on the shared key must be
// byte-identical — row set and aggregate results — to the scan of the
// pre-DECOMPOSE table, on both the segmented SUT and the rebuild oracle.
// The equivalence is the lossless-join guarantee, so it only holds when
// the decomposition's FDs did: with a duplicate key in T the join
// legitimately fans out, and the check skips.
func checkDecomposeJoinOracle(t *testing.T, step int, sut, oracle *cods.DB, pre [][]string) {
	t.Helper()
	seen := make(map[string]bool, len(pre))
	distinctG := make(map[string]bool)
	for _, r := range pre {
		if seen[r[0]] {
			return // duplicate key: decomposition was lossy by design
		}
		seen[r[0]] = true
		distinctG[r[1]] = true
	}
	for _, db := range []*cods.DB{sut, oracle} {
		rs, err := db.Select("SELECT K, G, V FROM A JOIN B ON (K)")
		if err != nil {
			t.Fatalf("step %d: join over decomposed outputs: %v", step, err)
		}
		if got, want := sortedRows(rs.Rows), sortedRows(pre); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: A⋈B (%d rows) diverged from pre-DECOMPOSE T (%d rows)",
				step, len(got), len(want))
		}
		ag, err := db.Select("SELECT count(*), count_distinct(G) FROM A JOIN B ON (K)")
		if err != nil {
			t.Fatalf("step %d: aggregates over decomposed outputs: %v", step, err)
		}
		want := [][]string{{fmt.Sprint(len(pre)), fmt.Sprint(len(distinctG))}}
		if !reflect.DeepEqual(ag.Rows, want) {
			t.Fatalf("step %d: join aggregates %v, want %v", step, ag.Rows, want)
		}
	}
}

func compareDBs(t *testing.T, step int, sut, oracle *cods.DB, nextKey int, rng *rand.Rand) {
	t.Helper()
	ts1, ts2 := sut.Tables(), oracle.Tables()
	if !reflect.DeepEqual(ts1, ts2) {
		t.Fatalf("step %d: table sets differ: %v vs %v", step, ts1, ts2)
	}
	for _, name := range ts1 {
		r1, e1 := sut.Rows(name, 0, 0)
		r2, e2 := oracle.Rows(name, 0, 0)
		if e1 != nil || e2 != nil {
			t.Fatalf("step %d: rows(%s): %v / %v", step, name, e1, e2)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("step %d: table %s row sequences differ (%d vs %d rows)", step, name, len(r1), len(r2))
		}
		// Point query on the key, range query and count on a payload
		// column — these take the bitmap scan paths (EqBitmap fast path
		// for the non-integer key literal; predicate scan for the range).
		if cols, err := sut.Columns(name); err == nil && len(cols) > 0 && cols[0] == "K" {
			cond := fmt.Sprintf("K = 'k%04d'", rng.Intn(nextKey))
			q1, e1 := sut.Query(name, cond)
			q2, e2 := oracle.Query(name, cond)
			if (e1 == nil) != (e2 == nil) || !reflect.DeepEqual(q1, q2) {
				t.Fatalf("step %d: query %s %q differ: %v/%v %v/%v", step, name, cond, q1, e1, q2, e2)
			}
			hasG := false
			for _, c := range cols {
				hasG = hasG || c == "G"
			}
			if hasG {
				gcond := fmt.Sprintf("G != 'g%d'", rng.Intn(4))
				c1, e1 := sut.Count(name, gcond)
				c2, e2 := oracle.Count(name, gcond)
				if e1 != nil || e2 != nil || c1 != c2 {
					t.Fatalf("step %d: count %s %q: %d(%v) vs %d(%v)", step, name, gcond, c1, e1, c2, e2)
				}
			}
		}
	}
}

package cods

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openDurable(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := OpenDurable(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *DB, op string) {
	t.Helper()
	if _, err := db.Exec(op); err != nil {
		t.Fatalf("Exec(%q): %v", op, err)
	}
}

// TestDurableRecoveryFromWALOnly crashes (by simply abandoning the DB
// without Close or Checkpoint) after N statements; reopening must recover
// every one from the WAL alone — no snapshot was ever written.
func TestDurableRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	stmts := []string{
		"CREATE TABLE r (a, b, c)",
		"ADD COLUMN d TO r DEFAULT 'x'",
		"RENAME COLUMN d TO e IN r",
		"COPY TABLE r TO s",
		"RENAME TABLE s TO t2",
	}
	for _, s := range stmts {
		mustExec(t, db, s)
	}
	// No Close: simulate a crash by dropping the handle.

	re := openDurable(t, dir)
	if v := re.Version(); v != len(stmts) {
		t.Fatalf("recovered version = %d, want %d", v, len(stmts))
	}
	if got, want := re.Tables(), []string{"r", "t2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
	cols, err := re.Columns("r")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c", "e"}; !reflect.DeepEqual(cols, want) {
		t.Fatalf("recovered columns = %v, want %v", cols, want)
	}
}

// TestDurableRecoverySnapshotPlusWAL checkpoints mid-stream: recovery
// must load the snapshot and replay only the statements after it.
func TestDurableRecoverySnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.CreateTableFromRows("r", []string{"a", "b"}, nil,
		[][]string{{"1", "x"}, {"2", "y"}, {"3", "x"}}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "COPY TABLE r TO s")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "ADD COLUMN c TO s DEFAULT 'd'")
	mustExec(t, db, "DROP TABLE r")

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
	n, err := re.NumRows("s")
	if err != nil || n != 3 {
		t.Fatalf("recovered s has %d rows (%v), want 3", n, err)
	}
	rows, err := re.Query("s", "b = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("query on recovered data returned %d rows, want 2", len(rows))
	}
}

// TestDurableTornWALRecord truncates the log mid-record, as a crash
// during an append would: recovery keeps every whole statement and drops
// the torn one.
func TestDurableTornWALRecord(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a, b)")
	mustExec(t, db, "ADD COLUMN c TO r DEFAULT 'v'")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	walFile := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walFile, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if v := re.Version(); v != 1 {
		t.Fatalf("recovered version = %d, want 1 (torn statement dropped)", v)
	}
	cols, err := re.Columns("r")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(cols, want) {
		t.Fatalf("recovered columns = %v, want %v", cols, want)
	}
	// The truncated tail must not poison later appends.
	mustExec(t, re, "ADD COLUMN c2 TO r DEFAULT 'w'")
	re2 := openDurable(t, dir)
	if cols, _ := re2.Columns("r"); !reflect.DeepEqual(cols, []string{"a", "b", "c2"}) {
		t.Fatalf("columns after re-append = %v", cols)
	}
}

// Quoted defaults must survive the WAL's text round trip.
func TestDurableQuotedDefault(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")
	mustExec(t, db, "ADD COLUMN c TO r DEFAULT 'it''s'")

	re := openDurable(t, dir)
	if cols, _ := re.Columns("r"); !reflect.DeepEqual(cols, []string{"a", "c"}) {
		t.Fatalf("recovered columns = %v", cols)
	}
}

// A crash between a checkpoint's snapshot publish and its WAL reset must
// not double-apply the logged statements: simulate it by checkpointing,
// then restoring the pre-checkpoint (stale-epoch) WAL bytes.
func TestDurableCrashBetweenSnapshotAndWALReset(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")
	mustExec(t, db, "COPY TABLE r TO s")
	preWAL, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The snapshot is published; put back the old epoch-0 log as if the
	// process died before Reset ran.
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), preWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"r", "s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v (stale WAL must be discarded, not replayed)", got, want)
	}
	// The stale log must have been retired: new statements recover fine.
	mustExec(t, re, "DROP TABLE s")
	re2 := openDurable(t, dir)
	if got, want := re2.Tables(), []string{"r"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("tables after post-recovery exec = %v, want %v", got, want)
	}
}

// Rollback cannot be replayed from text (version numbers restart on
// reopen), so it checkpoints: recovery must land on the rolled-back state.
func TestDurableRollbackCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")
	mustExec(t, db, "RENAME TABLE r TO s")
	if err := db.Rollback(1); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"r"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
}

// ExecScript journals the statements applied before a mid-script failure.
func TestDurableScriptPartialFailure(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	_, err := db.ExecScript("CREATE TABLE r (a)\nCREATE TABLE s (b)\nDROP TABLE nosuch")
	if err == nil {
		t.Fatal("script with bad tail succeeded")
	}

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"r", "s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
}

func TestDurableClosedRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP TABLE r"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after Close: err = %v, want ErrClosed", err)
	}
	if err := db.CreateTableFromRows("x", []string{"a"}, nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateTableFromRows after Close: err = %v, want ErrClosed", err)
	}
	// Reads still serve from memory.
	if !db.HasTable("r") {
		t.Fatal("read after Close failed")
	}
}

func TestExecUnknownStatementTypedError(t *testing.T) {
	db := Open(Config{})
	_, err := db.Exec("TRANSMOGRIFY TABLE r")
	if !errors.Is(err, ErrUnknownStatement) {
		t.Fatalf("err = %v, want errors.Is ErrUnknownStatement", err)
	}
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v, want errors.Is ErrParse", err)
	}
}

package cods

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openDurable(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := OpenDurable(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *DB, op string) {
	t.Helper()
	if _, err := db.Exec(op); err != nil {
		t.Fatalf("Exec(%q): %v", op, err)
	}
}

// TestDurableRecoveryFromWALOnly crashes (by simply abandoning the DB
// without Close or Checkpoint) after N statements; reopening must recover
// every one from the WAL alone — no snapshot was ever written.
func TestDurableRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	stmts := []string{
		"CREATE TABLE r (a, b, c)",
		"ADD COLUMN d TO r DEFAULT 'x'",
		"RENAME COLUMN d TO e IN r",
		"COPY TABLE r TO s",
		"RENAME TABLE s TO t2",
	}
	for _, s := range stmts {
		mustExec(t, db, s)
	}
	// No Close: simulate a crash by dropping the handle.

	re := openDurable(t, dir)
	if v := re.Version(); v != len(stmts) {
		t.Fatalf("recovered version = %d, want %d", v, len(stmts))
	}
	if got, want := re.Tables(), []string{"r", "t2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
	cols, err := re.Columns("r")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c", "e"}; !reflect.DeepEqual(cols, want) {
		t.Fatalf("recovered columns = %v, want %v", cols, want)
	}
}

// TestDurableRecoverySnapshotPlusWAL checkpoints mid-stream: recovery
// must load the snapshot and replay only the statements after it.
func TestDurableRecoverySnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.CreateTableFromRows("r", []string{"a", "b"}, nil,
		[][]string{{"1", "x"}, {"2", "y"}, {"3", "x"}}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "COPY TABLE r TO s")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "ADD COLUMN c TO s DEFAULT 'd'")
	mustExec(t, db, "DROP TABLE r")

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
	n, err := re.NumRows("s")
	if err != nil || n != 3 {
		t.Fatalf("recovered s has %d rows (%v), want 3", n, err)
	}
	rows, err := re.Query("s", "b = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("query on recovered data returned %d rows, want 2", len(rows))
	}
}

// TestDurableTornWALRecord truncates the log mid-record, as a crash
// during an append would: recovery keeps every whole statement and drops
// the torn one.
func TestDurableTornWALRecord(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a, b)")
	mustExec(t, db, "ADD COLUMN c TO r DEFAULT 'v'")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	walFile := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walFile, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if v := re.Version(); v != 1 {
		t.Fatalf("recovered version = %d, want 1 (torn statement dropped)", v)
	}
	cols, err := re.Columns("r")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(cols, want) {
		t.Fatalf("recovered columns = %v, want %v", cols, want)
	}
	// The truncated tail must not poison later appends.
	mustExec(t, re, "ADD COLUMN c2 TO r DEFAULT 'w'")
	re2 := openDurable(t, dir)
	if cols, _ := re2.Columns("r"); !reflect.DeepEqual(cols, []string{"a", "b", "c2"}) {
		t.Fatalf("columns after re-append = %v", cols)
	}
}

// Quoted defaults must survive the WAL's text round trip.
func TestDurableQuotedDefault(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")
	mustExec(t, db, "ADD COLUMN c TO r DEFAULT 'it''s'")

	re := openDurable(t, dir)
	if cols, _ := re.Columns("r"); !reflect.DeepEqual(cols, []string{"a", "c"}) {
		t.Fatalf("recovered columns = %v", cols)
	}
}

// A crash between a checkpoint's snapshot publish and its WAL reset must
// not double-apply the logged statements: simulate it by checkpointing,
// then restoring the pre-checkpoint (stale-epoch) WAL bytes.
func TestDurableCrashBetweenSnapshotAndWALReset(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")
	mustExec(t, db, "COPY TABLE r TO s")
	preWAL, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The snapshot is published; put back the old epoch-0 log as if the
	// process died before Reset ran.
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), preWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"r", "s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v (stale WAL must be discarded, not replayed)", got, want)
	}
	// The stale log must have been retired: new statements recover fine.
	mustExec(t, re, "DROP TABLE s")
	re2 := openDurable(t, dir)
	if got, want := re2.Tables(), []string{"r"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("tables after post-recovery exec = %v, want %v", got, want)
	}
}

// Rollback cannot be replayed from text (version numbers restart on
// reopen), so it checkpoints: recovery must land on the rolled-back state.
func TestDurableRollbackCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")
	mustExec(t, db, "RENAME TABLE r TO s")
	if err := db.Rollback(1); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"r"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
}

// ExecScript journals the statements applied before a mid-script failure.
func TestDurableScriptPartialFailure(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	_, err := db.ExecScript("CREATE TABLE r (a)\nCREATE TABLE s (b)\nDROP TABLE nosuch")
	if err == nil {
		t.Fatal("script with bad tail succeeded")
	}

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"r", "s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
}

func TestDurableClosedRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP TABLE r"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after Close: err = %v, want ErrClosed", err)
	}
	if err := db.CreateTableFromRows("x", []string{"a"}, nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateTableFromRows after Close: err = %v, want ErrClosed", err)
	}
	// Reads still serve from memory.
	if !db.HasTable("r") {
		t.Fatal("read after Close failed")
	}
}

// TestDurableDMLRecoveryFromWAL journals DML, crashes (drops the handle
// without Close or Checkpoint) and expects replay to restore the delta
// overlay exactly — inserts present, deletes gone, updates applied.
func TestDurableDMLRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	for _, s := range []string{
		"CREATE TABLE r (k, v)",
		"INSERT INTO r VALUES ('a', '1')",
		"INSERT INTO r VALUES ('b', '2')",
		"INSERT INTO r VALUES ('c', 'x;y')", // hostile literal through the WAL
		"UPDATE r SET v = '20' WHERE k = 'b'",
		"DELETE FROM r WHERE k = 'a'",
	} {
		mustExec(t, db, s)
	}
	// No Close: simulate a crash.

	re := openDurable(t, dir)
	n, err := re.NumRows("r")
	if err != nil || n != 2 {
		t.Fatalf("recovered rows = %d (%v), want 2", n, err)
	}
	rows, err := re.Rows("r", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r[0]] = r[1]
	}
	want := map[string]string{"b": "20", "c": "x;y"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered rows = %v, want %v", got, want)
	}
}

// TestDurableDMLCheckpointCompaction: Checkpoint must compact the delta
// into the snapshot's rebuilt base, truncate the WAL, and a reopen must
// return identical query results — with the overlay gone, not replayed.
func TestDurableDMLCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (k, v)")
	for i := 0; i < 8; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO r VALUES ('k%d', '%d')", i, i))
	}
	mustExec(t, db, "DELETE FROM r WHERE v < '3'")
	mustExec(t, db, "UPDATE r SET v = '100' WHERE k = 'k5'")
	preRows, err := db.Query("r", "v >= '0'")
	if err != nil {
		t.Fatal(err)
	}
	preCount, err := db.Count("r", "v = '100'")
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint DML lands in the fresh WAL on top of the compacted
	// snapshot.
	mustExec(t, db, "INSERT INTO r VALUES ('post', '7')")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	postRows, err := re.Query("r", "v >= '0'")
	if err != nil {
		t.Fatal(err)
	}
	if len(postRows) != len(preRows)+1 {
		t.Fatalf("reopened rows = %d, want %d", len(postRows), len(preRows)+1)
	}
	cnt, err := re.Count("r", "v = '100'")
	if err != nil || cnt != preCount {
		t.Fatalf("reopened Count(v=100) = %d (%v), want %d", cnt, err, preCount)
	}
	n, err := re.NumRows("r")
	if err != nil || n != 6 {
		t.Fatalf("reopened rows = %d (%v), want 6 (8 - 3 deleted + 1 post)", n, err)
	}
}

// A DML script is journaled in one batched append, and the statements
// applied before a mid-script failure recover.
func TestDurableDMLScriptPartialFailure(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (k)")
	_, err := db.ExecScript("INSERT INTO r VALUES ('a'); INSERT INTO r VALUES ('b'); INSERT INTO nosuch VALUES ('c')")
	if err == nil {
		t.Fatal("script with bad tail succeeded")
	}

	re := openDurable(t, dir)
	n, err := re.NumRows("r")
	if err != nil || n != 2 {
		t.Fatalf("recovered rows = %d (%v), want 2", n, err)
	}
}

func TestExecUnknownStatementTypedError(t *testing.T) {
	db := Open(Config{})
	_, err := db.Exec("TRANSMOGRIFY TABLE r")
	if !errors.Is(err, ErrUnknownStatement) {
		t.Fatalf("err = %v, want errors.Is ErrUnknownStatement", err)
	}
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v, want errors.Is ErrParse", err)
	}
}

// blockCheckpoints makes SaveSnapshot in dir fail by occupying the
// CURRENT.tmp path (the snapshot pointer's staging file) with a
// directory; os.Create on it fails even when running as root, unlike
// permission bits. unblock with os.Remove.
func blockCheckpoints(t *testing.T, dir string) string {
	t.Helper()
	blocker := filepath.Join(dir, "CURRENT.tmp")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	return blocker
}

// TestCheckpointFailurePoisonsWrites covers the durability hole where a
// catalog change that can only be persisted by checkpointing (here a
// rollback) hits a snapshot failure: the change then exists nowhere on
// disk, so further catalog changes must be refused — otherwise they
// would be WAL-logged on top of the hole and recovery would replay them
// against a snapshot missing it.
func TestCheckpointFailurePoisonsWrites(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a, b)")

	blocker := blockCheckpoints(t, dir)
	if err := db.Rollback(0); err == nil {
		t.Fatal("Rollback with blocked snapshot succeeded")
	}
	// The rollback is live in memory but durable nowhere: the write path
	// must be poisoned...
	if _, err := db.Exec("CREATE TABLE s (x)"); err == nil {
		t.Fatal("Exec after failed checkpoint succeeded")
	}
	// ...while reads keep serving.
	if got := db.Tables(); len(got) != 0 {
		t.Fatalf("tables after rollback = %v, want none", got)
	}

	// A successful Checkpoint re-establishes durability and re-enables
	// writes.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE s (x)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
}

// TestExecScriptReturnsCommittedResultsOnCheckpointFailure: when the
// statements applied but making them durable failed, callers (the HTTP
// server) must still see what committed alongside the error.
func TestExecScriptReturnsCommittedResultsOnCheckpointFailure(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.CreateTableFromRows("t", []string{"a", "b"}, nil,
		[][]string{{"1", "x"}, {"2", "y"}}); err != nil {
		t.Fatal(err)
	}
	vals := filepath.Join(t.TempDir(), "vals.txt")
	if err := os.WriteFile(vals, []byte("p\nq\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A file-fed column is non-replayable, so the script persists by
	// checkpointing — which is blocked.
	blockCheckpoints(t, dir)
	results, err := db.ExecScript("ADD COLUMN c TO t FROM '" + vals + "'")
	if err == nil {
		t.Fatal("ExecScript with blocked checkpoint succeeded")
	}
	if len(results) != 1 {
		t.Fatalf("results = %v, want the committed statement alongside the error", results)
	}
	if got, want := results[0].Kind, "ADD COLUMN"; got != want {
		t.Fatalf("results[0].Kind = %q, want %q", got, want)
	}
}

// TestOpenDurableRejectsPlainSaveDir: a directory written by plain Save
// has tables but no CURRENT pointer; opening it as durable must fail
// loudly instead of starting empty and orphaning the data behind the
// first checkpoint's snapshot.
func TestOpenDurableRejectsPlainSaveDir(t *testing.T) {
	dir := t.TempDir()
	db := Open(Config{})
	if err := db.CreateTableFromRows("t", []string{"a"}, nil, [][]string{{"1"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenDurable(dir, Config{}); err == nil {
		t.Fatal("OpenDurable on a plain Save directory succeeded")
	}
	// The right opener still works.
	od, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !od.HasTable("t") {
		t.Fatal("OpenDir lost table t")
	}
}

// TestExplicitCheckpointFailureDoesNotPoison: when an explicit
// Checkpoint fails before publishing, every commit is still covered by
// the old snapshot plus the intact WAL, so writes must keep working —
// only checkpoints that were persisting a non-journalable change poison
// the write path.
func TestExplicitCheckpointFailureDoesNotPoison(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE r (a)")

	blocker := blockCheckpoints(t, dir)
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint with blocked snapshot succeeded")
	}
	mustExec(t, db, "CREATE TABLE s (x)")
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if got, want := re.Tables(), []string{"r", "s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables = %v, want %v", got, want)
	}
}

// TestExecReturnsResultOnCheckpointFailure mirrors the ExecScript case
// for the single-op path: a non-replayable statement that commits but
// cannot be made durable must surface its Result alongside the error.
func TestExecReturnsResultOnCheckpointFailure(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.CreateTableFromRows("t", []string{"a", "b"}, nil,
		[][]string{{"1", "x"}, {"2", "y"}}); err != nil {
		t.Fatal(err)
	}
	vals := filepath.Join(t.TempDir(), "vals.txt")
	if err := os.WriteFile(vals, []byte("p\nq\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	blockCheckpoints(t, dir)
	res, err := db.Exec("ADD COLUMN c TO t FROM '" + vals + "'")
	if err == nil {
		t.Fatal("Exec with blocked checkpoint succeeded")
	}
	if res == nil {
		t.Fatal("Exec returned nil Result for a committed statement")
	}
	if got, want := res.Kind, "ADD COLUMN"; got != want {
		t.Fatalf("res.Kind = %q, want %q", got, want)
	}
}

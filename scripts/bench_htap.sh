#!/bin/sh
# HTAP smoke profile -> BENCH_htap.json.
#
# Runs the mixed HTAP workload (zipfian point reads + GROUP-BY scans +
# keyed DML + a background evolution cycle) once per transport — inproc
# for engine-limit numbers, self-hosted http for the full server round
# trip — appending both runs to BENCH_htap.json, so successive PRs
# accumulate a comparable HTAP latency trajectory. The read-p99 SLO gate
# defaults to a deliberately generous 500ms: on a 1-CPU CI runner a scan
# or evolution cycle can stall the whole process, and the gate exists to
# catch order-of-magnitude regressions, not scheduler noise. Tighten
# locally with BENCH_HTAP_SLO_READ_P99=20ms for real measurements.
#
# Knobs: BENCH_HTAP_ROWS (default 20000), BENCH_HTAP_DURATION (5s),
# BENCH_HTAP_WORKERS (4), BENCH_HTAP_SLO_READ_P99 (500ms).
set -e
rows=${BENCH_HTAP_ROWS:-20000}
duration=${BENCH_HTAP_DURATION:-5s}
workers=${BENCH_HTAP_WORKERS:-4}
slo_read=${BENCH_HTAP_SLO_READ_P99:-500ms}

bin=$(mktemp -t codsbench.XXXXXX)
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/codsbench

for transport in inproc http; do
    "$bin" htap \
        -workload "smoke-$transport" \
        -transport "$transport" \
        -rows "$rows" -zipf 1.2 \
        -read 70 -scan 10 -write 20 -smo-interval 1s \
        -workers "$workers" -duration "$duration" \
        -slo-read-p99 "$slo_read" \
        -out BENCH_htap.json -seed 1 -quiet
done
echo "appended 2 runs to BENCH_htap.json"

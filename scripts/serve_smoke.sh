#!/bin/sh
# End-to-end smoke of the serving layer: build the real binary, start
# `cods serve` on a random port over a durable directory, drive the API
# over HTTP (health, exec, query, stats), then shut down gracefully and
# require a zero exit. Run from the repository root (CI, `make serve-smoke`).
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
bin="$workdir/cods"
go build -o "$bin" ./cmd/cods

logf="$workdir/serve.log"
"$bin" serve -addr 127.0.0.1:0 -dir "$workdir/db" >"$logf" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# The server logs "listening on 127.0.0.1:PORT" once bound.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*listening on //p' "$logf" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve_smoke: server never reported its address" >&2
    cat "$logf" >&2
    exit 1
fi
base="http://$addr"

curl -fsS "$base/healthz" | grep -q '"status":"ok"'
curl -fsS -XPOST "$base/exec" -d '{"op":"CREATE TABLE r (a, b)"}' | grep -q '"version":1'
curl -fsS -XPOST "$base/exec" -d '{"op":"ADD COLUMN c TO r DEFAULT '\''x'\''"}' | grep -q '"version":2'
curl -fsS -XPOST "$base/query" -d '{"table":"r"}' | grep -q '"columns":\["a","b","c"\]'
curl -fsS "$base/schema" | grep -q '"version":2'
curl -fsS "$base/stats" | grep -q '"requests"'

# A statement the server must reject as the client's fault.
code=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$base/exec" -d '{"op":"FROBNICATE r"}')
[ "$code" = "400" ] || { echo "serve_smoke: unknown statement gave $code, want 400" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" # non-zero (set -e) if the drain failed
echo "serve_smoke: OK"

#!/bin/sh
# Native go-fuzz pass over the hand-written kernels with reference models:
# the WAH binop/OrAllP/run-decoder kernels and the SMO parser's
# render-reparse round trip (what the WAL replays through). Each target
# always runs its checked-in seed corpus; FUZZ_TIME of live fuzzing per
# target on top (default 5s — the CI smoke; `make fuzz` runs longer).
set -e
t=${FUZZ_TIME:-5s}
for target in \
	"cods/internal/wah FuzzBinop" \
	"cods/internal/wah FuzzOrAllP" \
	"cods/internal/wah FuzzRunsDecode" \
	"cods/internal/smo FuzzParseScriptRoundTrip" \
	"cods/internal/smo FuzzParseSelect" \
; do
	pkg=${target% *}
	fn=${target#* }
	echo "fuzz $pkg $fn ($t)"
	go test -run="^$fn\$" -fuzz="^$fn\$" -fuzztime="$t" "$pkg"
done

#!/bin/sh
# docslint: documentation consistency checks.
#
# 1. Every Go package must carry a package-level doc comment: library
#    packages "// Package <name> ...", commands "// Command ...".
# 2. BENCHMARKS.md must not drift from the code it documents: every
#    `codsbench htap -flag` it shows must exist in `codsbench htap -h`,
#    every `codsbench joins -flag` in `codsbench joins -h`, every plain
#    `codsbench -flag` in `codsbench -h`, and every `make <target>` it
#    references must be a real Makefile target.
# 3. Every `cods serve` flag must be documented: each flag that
#    `cods serve -h` reports must appear (backticked) in README.md and
#    in the cmd/cods command doc comment's usage block.
# 4. Every codslint analyzer (`codslint -analyzers` is the source of
#    truth) must be named in both ARCHITECTURE.md and README.md, so the
#    invariant-lint docs cannot drift from the registered suite.
# 5. Every `cods:immutable` marker in the source must sit in the doc
#    comment of a type declaration, and that type must be named in
#    ARCHITECTURE.md's codslint section — a marker on a deleted or
#    renamed type is dead enforcement.
# 6. The documented SELECT grammar must not drift from the parser:
#    every clause keyword internal/smo/select.go accepts (the
#    keyword()/expectKeyword() literals) must appear in README.md's
#    query-syntax docs, so a grammar extension cannot land
#    undocumented.
#
# Run from the repository root (CI's docs-lint step, `make docs-lint`).
set -u
fail=0
for dir in . ./internal/* ./internal/*/* ./cmd/*; do
    [ -d "$dir" ] || continue
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    found=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q -E '^// (Package|Command) ' "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "docslint: $dir has no package doc comment (want '// Package ...' or '// Command ...')"
        fail=1
    fi
done

if [ -f BENCHMARKS.md ]; then
    # flag's -h output lists each flag as "  -name type" (or "  -name"
    # for booleans); anchor on that so -read cannot pass by matching a
    # substring of -slo-read-p99. The while loops run in subshells, so
    # violations are collected via their stdout rather than a variable.
    htap_help=$(go run ./cmd/codsbench htap -h 2>&1)
    joins_help=$(go run ./cmd/codsbench joins -h 2>&1)
    main_help=$(go run ./cmd/codsbench -h 2>&1)

    check_flags() {
        mode=$1 pattern=$2 help=$3
        grep -E "$pattern" BENCHMARKS.md | grep -oE ' -[a-z][a-z0-9-]*' | sort -u |
        while read -r flag; do
            name=${flag#-}
            case "$name" in h|help) continue ;; esac # flag's built-in help
            if ! printf '%s\n' "$help" | grep -qE "^  -$name( |\$)"; then
                echo "docslint: BENCHMARKS.md uses flag -$name not in \`codsbench${mode:+ $mode} -h\`"
            fi
        done
    }
    viol=$(
        check_flags "htap" 'codsbench htap ' "$htap_help"
        check_flags "joins" 'codsbench joins ' "$joins_help"
        check_flags "" 'codsbench -' "$main_help"
        grep -oE '`make [a-z][a-z-]*`' BENCHMARKS.md | tr -d '`' | sort -u |
        while read -r _ target; do
            if ! grep -qE "^$target:" Makefile; then
                echo "docslint: BENCHMARKS.md references \`make $target\` but Makefile has no such target"
            fi
        done
    )
    if [ -n "$viol" ]; then
        echo "$viol"
        fail=1
    fi
fi

# cods serve flags: -h is generated from the flag set, so it is the
# source of truth; README.md and the command doc comment must keep up.
serve_help=$(go run ./cmd/cods serve -h 2>&1)
viol=$(
    printf '%s\n' "$serve_help" | grep -oE '^  -[a-z][a-z0-9-]*' | sort -u |
    while read -r flag; do
        name=${flag#*-}
        if ! grep -q -- "\`-$name\`" README.md; then
            echo "docslint: \`cods serve -h\` has flag -$name undocumented in README.md"
        fi
        if ! grep -qE "^//.* \[-$name( |\])" cmd/cods/main.go; then
            echo "docslint: \`cods serve -h\` has flag -$name missing from the cmd/cods usage comment"
        fi
    done
)
if [ -n "$viol" ]; then
    echo "$viol"
    fail=1
fi

# codslint analyzers: the registered suite is the source of truth; both
# ARCHITECTURE.md and README.md must name every analyzer.
viol=$(
    go run ./cmd/codslint -analyzers | cut -f1 |
    while read -r name; do
        for doc in ARCHITECTURE.md README.md; do
            if ! grep -q "\`$name\`" "$doc"; then
                echo "docslint: codslint analyzer $name is not named in $doc"
            fi
        done
    done
)
if [ -n "$viol" ]; then
    echo "$viol"
    fail=1
fi

# cods:immutable markers: each must be the doc comment of a type
# declaration (within the next 5 lines — doc text may follow the
# marker), and that type must appear in ARCHITECTURE.md so the enforced
# list stays documented.
viol=$(
    grep -rnE '^// cods:immutable$' --include='*.go' . |
    grep -v '/testdata/' |
    while IFS=: read -r file line _; do
        typename=$(awk -v start="$line" 'NR > start && NR <= start + 5 && /^type [A-Za-z_]/ { print $2; exit }' "$file")
        if [ -z "$typename" ]; then
            echo "docslint: $file:$line: cods:immutable marker is not attached to a type declaration"
        elif ! grep -q "$typename" ARCHITECTURE.md; then
            echo "docslint: cods:immutable type $typename ($file:$line) is not mentioned in ARCHITECTURE.md"
        fi
    done
)
if [ -n "$viol" ]; then
    echo "$viol"
    fail=1
fi

# SELECT grammar: the parser's accepted clause keywords (the quoted
# uppercase literals in keyword()/expectKeyword() calls in select.go,
# plus SELECT itself) are the source of truth; README.md's query docs
# must name every one of them.
viol=$(
    {
        echo SELECT
        grep -oE '(expectKeyword|keyword)\("[A-Z]+"\)' internal/smo/select.go |
            grep -oE '"[A-Z]+"' | tr -d '"'
    } | sort -u |
    while read -r kw; do
        if ! grep -qw "$kw" README.md; then
            echo "docslint: SELECT clause keyword $kw (internal/smo/select.go) is not documented in README.md"
        fi
    done
)
if [ -n "$viol" ]; then
    echo "$viol"
    fail=1
fi

[ "$fail" -eq 0 ] && echo "docslint: all packages documented, benchmark, flag, grammar, and codslint docs consistent"
exit $fail

#!/bin/sh
# docslint: fail when any Go package lacks a package-level doc comment.
# Library packages need "// Package <name> ...", commands "// Command ...".
# Run from the repository root (CI's docs-lint step, `make docs-lint`).
set -u
fail=0
for dir in . ./internal/* ./cmd/*; do
    [ -d "$dir" ] || continue
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    found=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q -E '^// (Package|Command) ' "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "docslint: $dir has no package doc comment (want '// Package ...' or '// Command ...')"
        fail=1
    fi
done
[ "$fail" -eq 0 ] && echo "docslint: all packages documented"
exit $fail

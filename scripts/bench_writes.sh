#!/bin/sh
# Sustained keyed-write benchmark -> BENCH_writes.json.
#
# Runs BenchmarkSustainedKeyedWrites at a fixed statement count (50000 by
# default: the pending-rows scale the bounded-memory write path is
# specified against — override with BENCH_WRITES_N) and records ns/op and
# the reported memory gauges per configuration, so successive PRs
# accumulate a comparable write-path perf trajectory.
set -e
n=${BENCH_WRITES_N:-50000}
out=$(go test -run=NONE -bench=SustainedKeyedWrites -benchtime="${n}x" cods)
echo "$out"
echo "$out" | awk '
  BEGIN { printf "[" }
  $1 ~ /^BenchmarkSustainedKeyedWrites\// {
    split($1, parts, "/")
    sub(/-[0-9]+$/, "", parts[2])
    if (found++) printf ","
    printf "\n  {\"config\": \"%s\", \"statements\": %s, \"ns_per_op\": %s", parts[2], $2, $3
    for (i = 5; i + 1 <= NF; i += 2) printf ", \"%s\": %s", $(i + 1), $i
    printf "}"
  }
  END { print "\n]" }
' > BENCH_writes.json
echo "wrote BENCH_writes.json"

#!/bin/sh
# Write-path benchmarks -> BENCH_writes.json.
#
# Two series, both at a fixed statement count so ns/op is comparable
# across runs and PRs:
#
#  - "sustained-keyed": BenchmarkSustainedKeyedWrites (50000 statements by
#    default, override with BENCH_WRITES_N) — the overlay write path per
#    retention configuration.
#  - "huge-table": BenchmarkHugeTableSustainedWrites (20000 statements by
#    default, override with BENCH_HUGE_N) — the same stream over 100k and
#    1M base rows in segmented vs rebuild flush mode, the flat-vs-linear
#    evidence for the segmented base storage. Set CODS_BENCH_HUGE=1 to add
#    the 10M-row point (needs several GB of RAM).
#  - "evolution": BenchmarkEvolutionDecompose (20 iterations by default,
#    override with BENCH_EVOLVE_N) — DECOMPOSE on a segmented 1M-row
#    table (99% merged base, 1% tail), segment-wise map/merge evolution
#    vs the monolithic rebuild oracle (RebuildEvolve).
set -e
n=${BENCH_WRITES_N:-50000}
hn=${BENCH_HUGE_N:-20000}
en=${BENCH_EVOLVE_N:-20}
out=$(go test -run=NONE -bench=SustainedKeyedWrites -benchtime="${n}x" cods)
echo "$out"
hout=$(go test -run=NONE -bench=HugeTableSustainedWrites -benchtime="${hn}x" cods)
echo "$hout"
eout=$(go test -run=NONE -bench=EvolutionDecompose -benchtime="${en}x" cods)
echo "$eout"
{
	echo "$out" | awk '
	  $1 ~ /^BenchmarkSustainedKeyedWrites\// {
	    split($1, parts, "/")
	    sub(/-[0-9]+$/, "", parts[2])
	    if (found++) printf ","
	    printf "\n  {\"bench\": \"sustained-keyed\", \"config\": \"%s\", \"statements\": %s, \"ns_per_op\": %s", parts[2], $2, $3
	    for (i = 5; i + 1 <= NF; i += 2) printf ", \"%s\": %s", $(i + 1), $i
	    printf "}"
	  }
	  BEGIN { printf "[" }
	'
	echo "$hout" | awk '
	  $1 ~ /^BenchmarkHugeTableSustainedWrites\// {
	    split($1, parts, "/")
	    sub(/-[0-9]+$/, "", parts[3])
	    base = parts[2]
	    sub(/^base/, "", base)
	    rows = base
	    sub(/k$/, "000", rows)
	    sub(/M$/, "000000", rows)
	    printf ",\n  {\"bench\": \"huge-table\", \"base_rows\": %s, \"mode\": \"%s\", \"statements\": %s, \"ns_per_op\": %s", rows, parts[3], $2, $3
	    for (i = 5; i + 1 <= NF; i += 2) printf ", \"%s\": %s", $(i + 1), $i
	    printf "}"
	  }
	'
	echo "$eout" | awk '
	  $1 ~ /^BenchmarkEvolutionDecompose\// {
	    split($1, parts, "/")
	    sub(/-[0-9]+$/, "", parts[2])
	    printf ",\n  {\"bench\": \"evolution\", \"base_rows\": 1000000, \"mode\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", parts[2], $2, $3
	    for (i = 5; i + 1 <= NF; i += 2) printf ", \"%s\": %s", $(i + 1), $i
	    printf "}"
	  }
	'
	printf "\n]\n"
} > BENCH_writes.json
echo "wrote BENCH_writes.json"

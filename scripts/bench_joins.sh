#!/bin/sh
# Join benchmark -> BENCH_joins.json.
#
# One `codsbench joins` run per invocation: a generated fact table is
# decomposed into a fact x dimension star (shared dictionary lineage on
# the key), then the same selective count runs three ways — scanning the
# pre-DECOMPOSE table, the hash join with the WAH semi-join reduction,
# and the hash join without it. The structured result (per-mode elapsed
# ms and fact-rows/s, plus the shared-lineage flag) appends to
# BENCH_joins.json, so successive PRs accumulate a comparable join
# trajectory. The three modes must agree on the matched count; codsbench
# exits non-zero if they diverge.
#
# Knobs: BENCH_JOINS_ROWS (default 1000000 — the issue's scenario),
# BENCH_JOINS_DIM (10000), BENCH_JOINS_PARALLELISM (0 = GOMAXPROCS).
set -e
rows=${BENCH_JOINS_ROWS:-1000000}
dim=${BENCH_JOINS_DIM:-10000}
par=${BENCH_JOINS_PARALLELISM:-0}

go run ./cmd/codsbench joins \
    -rows "$rows" -dim "$dim" -parallelism "$par" \
    -out BENCH_joins.json -seed 1 -quiet
echo "appended 1 run to BENCH_joins.json"

package cods_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cods"
)

// TestSelectJoinOracleAfterDecompose is the evolution oracle for joins:
// after DECOMPOSE splits a table along a functional dependency, joining
// the outputs back together on the shared key must reproduce every
// query against the original table byte for byte — plain scans,
// global aggregates, and grouped aggregates alike. The table spans
// multiple storage segments (bulk load + inserts + compaction), so the
// segment-aware scan under the join is exercised across boundaries.
func TestSelectJoinOracleAfterDecompose(t *testing.T) {
	db := cods.Open(cods.Config{Parallelism: 2})
	var rows [][]string
	for i := 0; i < 300; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("e%02d", i%30),         // Employee
			fmt.Sprintf("s%04d", i),            // Skill (unique)
			fmt.Sprintf("%d", (i%17)*(i%5)-10), // Hours (numeric, signed)
			fmt.Sprintf("addr%02d", i%30),      // Address (FD: Employee -> Address)
		})
	}
	cols := []string{"Employee", "Skill", "Hours", "Address"}
	if err := db.CreateTableFromRows("R", cols, nil, rows[:250]); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[250:] {
		stmt := fmt.Sprintf("INSERT INTO R VALUES ('%s', '%s', '%s', '%s')", r[0], r[1], r[2], r[3])
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}

	// Every oracle query pins its row order (Skill is unique; Employee
	// keys the groups), so "byte-identical" is well-defined.
	queries := []string{
		"SELECT Employee, Skill, Hours, Address FROM %s ORDER BY Skill",
		"SELECT Skill, Address, Hours FROM %s WHERE Employee = 'e07' ORDER BY Skill",
		"SELECT count(*), sum(Hours), avg(Hours), min(Skill), max(Skill), count_distinct(Address) FROM %s",
		"SELECT count(*), sum(Hours) FROM %s WHERE Hours >= '3' GROUP BY Employee ORDER BY Employee",
		"SELECT count_distinct(Skill) FROM %s GROUP BY Address ORDER BY Address DESC LIMIT 7",
	}
	before := make([]*cods.ResultSet, len(queries))
	for i, q := range queries {
		rs, err := db.Select(fmt.Sprintf(q, "R"))
		if err != nil {
			t.Fatalf("pre-decompose %q: %v", q, err)
		}
		before[i] = rs
	}

	if _, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill, Hours), T (Employee, Address)"); err != nil {
		t.Fatal(err)
	}

	joined := "S JOIN T ON (Employee)"
	for i, q := range queries {
		rs, err := db.Select(fmt.Sprintf(q, joined))
		if err != nil {
			t.Fatalf("post-decompose %q: %v", q, err)
		}
		if !reflect.DeepEqual(rs.Columns, before[i].Columns) {
			t.Errorf("%q: columns %v over the join, %v over the original", q, rs.Columns, before[i].Columns)
		}
		if !reflect.DeepEqual(rs.Rows, before[i].Rows) {
			t.Errorf("%q: join-over-decomposed diverged from scan-of-original\n join: %v\n orig: %v",
				q, rs.Rows, before[i].Rows)
		}
	}
}

// joinOracle is the naive nested-loop reference: probe rows in order,
// build rows in order, keys compared as plain strings.
func joinOracle(probe, build [][]string, probeKey, buildKey, buildExtra []int) [][]string {
	var out [][]string
	for _, pr := range probe {
		for _, br := range build {
			match := true
			for i := range probeKey {
				if pr[probeKey[i]] != br[buildKey[i]] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row := append([]string(nil), pr...)
			for _, bi := range buildExtra {
				row = append(row, br[bi])
			}
			out = append(out, row)
		}
	}
	return out
}

// TestSelectJoinParityRandomized races randomized join queries (duplicate
// keys, NULL-ish empty-string values, an empty build side, multi-column
// keys) against a naive nested-loop oracle while a DECOMPOSE of an
// unrelated table sits parked mid-operator holding the write path. Under
// -race this pins the facade promise that joined reads are lock-free
// against the snapshot.
func TestSelectJoinParityRandomized(t *testing.T) {
	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	db := cods.Open(cods.Config{Parallelism: 2, Status: func(step string) {
		// Park the evolution proper, not the DML/compaction events that
		// precede it.
		if strings.HasPrefix(step, "distinction") {
			once.Do(func() {
				close(parked)
				<-release
			})
		}
	}})

	var evoRows [][]string
	for i := 0; i < 400; i++ {
		evoRows = append(evoRows, []string{
			fmt.Sprintf("e%02d", i%40), fmt.Sprintf("s%03d", i), fmt.Sprintf("a%02d", i%20),
		})
	}
	if err := db.CreateTableFromRows("R", []string{"Employee", "Skill", "Address"}, nil, evoRows); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	keys := []string{"", "k0", "k1", "k2", "k3", "k4", "k5"} // "" is a legal value
	val := func() string {
		if rng.Intn(8) == 0 {
			return ""
		}
		return fmt.Sprintf("v%03d", rng.Intn(500))
	}
	var factRows, dimRows, fact2Rows, dim2Rows [][]string
	for i := 0; i < 150; i++ {
		factRows = append(factRows, []string{keys[rng.Intn(len(keys))], val()})
	}
	for i := 0; i < 30; i++ { // duplicate dim keys: join fan-out > 1
		dimRows = append(dimRows, []string{keys[rng.Intn(len(keys))], val()})
	}
	for i := 0; i < 80; i++ {
		fact2Rows = append(fact2Rows, []string{keys[rng.Intn(3)], keys[rng.Intn(len(keys))], val()})
	}
	for i := 0; i < 25; i++ {
		dim2Rows = append(dim2Rows, []string{keys[rng.Intn(3)], keys[rng.Intn(len(keys))], val()})
	}
	for _, tb := range []struct {
		name string
		cols []string
		rows [][]string
	}{
		{"fact", []string{"K", "F"}, factRows},
		{"dim", []string{"K", "D"}, dimRows},
		{"fact2", []string{"K1", "K2", "F"}, fact2Rows},
		{"dim2", []string{"K1", "K2", "D"}, dim2Rows},
		{"lonely", []string{"K", "L"}, [][]string{{"nowhere", "x"}}},
	} {
		if err := db.CreateTableFromRows(tb.name, tb.cols, nil, tb.rows); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
		done <- err
	}()
	<-parked

	check := func(desc string, got *cods.ResultSet, want [][]string) {
		t.Helper()
		if got.Rows == nil {
			t.Errorf("%s: Rows is nil, want empty non-nil", desc)
		}
		if g, w := sortedRows(got.Rows), sortedRows(want); !reflect.DeepEqual(g, w) {
			t.Errorf("%s: %d rows diverge from the nested-loop oracle\n got: %v\nwant: %v",
				desc, len(g), g, w)
		}
	}

	// Single-key join, duplicate keys and empty-string keys on both sides.
	rs, err := db.RunQuery("fact", cods.TableQuery{Joins: []cods.Join{{Table: "dim", On: []string{"K"}}}})
	if err != nil {
		t.Fatal(err)
	}
	check("fact⋈dim", rs, joinOracle(factRows, dimRows, []int{0}, []int{0}, []int{1}))

	// The same join through the statement text path.
	rs, err = db.Select("SELECT * FROM fact JOIN dim ON (K)")
	if err != nil {
		t.Fatal(err)
	}
	check("fact⋈dim via SELECT", rs, joinOracle(factRows, dimRows, []int{0}, []int{0}, []int{1}))

	// Multi-column key: ("a","b") must not collide with ("ab","").
	rs, err = db.RunQuery("fact2", cods.TableQuery{Joins: []cods.Join{{Table: "dim2", On: []string{"K1", "K2"}}}})
	if err != nil {
		t.Fatal(err)
	}
	check("fact2⋈dim2", rs, joinOracle(fact2Rows, dim2Rows, []int{0, 1}, []int{0, 1}, []int{2}))

	// Empty build sides: no key overlap at all, and a dim predicate that
	// masks out every build row before the hash table fills.
	rs, err = db.RunQuery("fact", cods.TableQuery{Joins: []cods.Join{{Table: "lonely", On: []string{"K"}}}})
	if err != nil {
		t.Fatal(err)
	}
	check("fact⋈lonely", rs, nil)
	rs, err = db.RunQuery("fact", cods.TableQuery{
		Joins: []cods.Join{{Table: "dim", On: []string{"K"}}},
		Where: "D = 'no-such-value'",
	})
	if err != nil {
		t.Fatal(err)
	}
	check("fact⋈dim masked empty", rs, nil)

	// Random predicate shapes over the joined output.
	for i := 0; i < 10; i++ {
		k := keys[rng.Intn(len(keys))]
		rs, err := db.RunQuery("fact", cods.TableQuery{
			Joins: []cods.Join{{Table: "dim", On: []string{"K"}}},
			Where: fmt.Sprintf("K != '%s'", k),
		})
		if err != nil {
			t.Fatal(err)
		}
		var keep [][]string
		for _, r := range joinOracle(factRows, dimRows, []int{0}, []int{0}, []int{1}) {
			if r[0] != k {
				keep = append(keep, r)
			}
		}
		check(fmt.Sprintf("fact⋈dim K != %q", k), rs, keep)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parked DECOMPOSE failed: %v", err)
	}
}

// TestSelectErrorClassification pins the sentinel wrapping the HTTP
// layer relies on: unknown tables (FROM or JOIN) match ErrNoTable,
// malformed statements match ErrParse.
func TestSelectErrorClassification(t *testing.T) {
	db := cods.Open(cods.Config{})
	if err := db.CreateTableFromRows("t", []string{"K", "V"}, nil, [][]string{{"a", "1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Select("SELECT * FROM nosuch"); !errors.Is(err, cods.ErrNoTable) {
		t.Errorf("unknown FROM table: err = %v, want ErrNoTable", err)
	}
	if _, err := db.Select("SELECT * FROM t JOIN nosuch ON (K)"); !errors.Is(err, cods.ErrNoTable) {
		t.Errorf("unknown JOIN table: err = %v, want ErrNoTable", err)
	}
	if _, err := db.Select("SELECT FROM t"); !errors.Is(err, cods.ErrParse) {
		t.Errorf("malformed statement: err = %v, want ErrParse", err)
	}
	if _, err := db.Select("CREATE TABLE u (A)"); !errors.Is(err, cods.ErrParse) {
		t.Errorf("non-SELECT statement: err = %v, want ErrParse", err)
	}
	if _, err := db.Select("SELECT * FROM t JOIN t ON (Q)"); err == nil {
		t.Error("bad ON column accepted")
	}
}
